// Steady-state allocation contracts for the public API: after burn-in, the
// simulation and measurement hot paths must not touch the heap.
package sops_test

import (
	"context"
	"testing"

	"sops"
)

func TestSystemStepAllocs(t *testing.T) {
	sys, err := sops.New(sops.Options{
		Counts: []int{50, 50},
		Lambda: 4, Gamma: 4,
		Layout: sops.LayoutLine,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.RunSteps(200_000)
	if avg := testing.AllocsPerRun(5000, func() {
		sys.Step()
	}); avg != 0 {
		t.Fatalf("System.Step allocates %v times per step at steady state", avg)
	}
}

// TestSystemStepProbeAllocs: attaching a telemetry probe must not put
// allocations on the step hot path — publishing is an amortized batch of
// plain atomic adds.
func TestSystemStepProbeAllocs(t *testing.T) {
	sys, err := sops.New(sops.Options{
		Counts: []int{50, 50},
		Lambda: 4, Gamma: 4,
		Layout: sops.LayoutLine,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	probe := sops.NewProbe()
	if _, err := sys.Run(context.Background(), sops.RunSpec{
		Steps:     200_000,
		Telemetry: &sops.Telemetry{Probe: probe},
	}); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(5000, func() {
		sys.Step()
	}); avg != 0 {
		t.Fatalf("System.Step with probe allocates %v times per step", avg)
	}
	if probe.Counters().Steps == 0 {
		t.Fatal("probe never published")
	}
}

func TestSystemMetricsAllocs(t *testing.T) {
	sys, err := sops.New(sops.Options{
		Counts: []int{50, 50},
		Lambda: 4, Gamma: 4,
		Layout: sops.LayoutLine,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.RunSteps(100_000)
	if avg := testing.AllocsPerRun(200, func() {
		snap := sys.Metrics()
		if snap.N != 100 {
			t.Fatal("bad snapshot")
		}
	}); avg != 0 {
		t.Fatalf("System.Metrics allocates %v times per run at steady state", avg)
	}
}
