#!/usr/bin/env bash
# sopsd disk-fault chaos drill: run the daemon's submit→kill -9→restart
# cycle under injected disk faults (via the SOPS_FAILFS knob wired to the
# internal/failfs layer) and require that every run either finishes with a
# result byte-identical to an uninterrupted execution or reports a clean,
# classified error — never a silently wrong result.
#
# Three scenarios:
#   1. fsync lie      — the sweep manifest's rename succeeds but its data
#                       blocks are truncated (power cut past a lying fsync);
#                       the restarted daemon must fall back to the .prev
#                       generation and recompute the lost cells.
#   2. rename ENOSPC  — every cell-checkpoint rename fails; each affected
#                       cell reports a classified error while every cell
#                       that does produce a result stays byte-identical.
#   3. bit rot        — the job's state document is corrupted on the read
#                       path at restart; the .prev generation recovers it.
#
# Requires: go, curl, jq. Run from the repository root:
#
#	bash scripts/sopsd_chaos.sh
set -euo pipefail

ADDR=localhost:18725
BASE=http://$ADDR
WORK=$(mktemp -d)
PID=

cleanup() {
	[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT

log() { echo "chaos: $*"; }

go build -o "$WORK/sopsd" ./cmd/sopsd

start_daemon() {
	local dir=$1 failfs=${2:-}
	SOPS_FAILFS="$failfs" "$WORK/sopsd" -dir "$dir" -listen "$ADDR" -workers 1 \
		-sweep-checkpoint-steps 5000 -retry-backoff 100ms \
		>>"$WORK/sopsd.log" 2>&1 &
	PID=$!
	for _ in $(seq 1 100); do
		curl -sf "$BASE/v1/jobs" >/dev/null 2>&1 && return 0
		sleep 0.1
	done
	log "daemon did not come up; log follows"
	cat "$WORK/sopsd.log"
	exit 1
}

stop_daemon() {
	[ -z "$PID" ] && return 0
	kill -9 "$PID" 2>/dev/null || true
	wait "$PID" 2>/dev/null || true
	PID=
}

SPEC='{
  "name": "chaos",
  "sweep": {
    "lambdas": [2, 4],
    "gammas": [2, 4],
    "seeds": [1, 2],
    "counts": [8, 8],
    "steps": 100000
  }
}'

submit() { curl -sf -X POST "$BASE/v1/jobs" -d "$SPEC" | jq -r .id; }

await() { # await <id> -> final state on stdout
	local id=$1 state=
	for _ in $(seq 1 600); do
		state=$(curl -sf "$BASE/v1/jobs/$id" | jq -r .state)
		case "$state" in done | failed | poisoned | canceled) break ;; esac
		sleep 0.2
	done
	echo "$state"
}

result_of() { curl -sf "$BASE/v1/jobs/$1" | jq -S .result; }

# --- Reference: uninterrupted, no faults. ----------------------------------
start_daemon "$WORK/ref"
REF_ID=$(submit)
[ "$(await "$REF_ID")" = done ] || { log "reference job failed"; exit 1; }
result_of "$REF_ID" >"$WORK/ref.json"
stop_daemon
log "reference captured"

# --- Scenario 1: fsync lie on the sweep manifest, then SIGKILL. ------------
# Every sweep-artifact rename past the second lands truncated (the rename
# itself succeeds — the classic lying-fsync power cut), so at kill time no
# sweep generation on disk verifies and the restart must recompute.
start_daemon "$WORK/lie" 'op=rename;path=sweep.ckpt;after=2;truncateto=40;count=1000000'
JOB=$(submit)
for _ in $(seq 1 600); do
	DONE=$(curl -sf "$BASE/v1/jobs/$JOB" | jq -r '.sweep.done // 0')
	[ "$DONE" -ge 3 ] && break
	sleep 0.1
done
stop_daemon
log "scenario 1: daemon SIGKILLed after $DONE cells with a torn manifest generation"
start_daemon "$WORK/lie"
[ "$(await "$JOB")" = done ] || { log "scenario 1: resume failed"; curl -s "$BASE/v1/jobs/$JOB" | jq .; exit 1; }
result_of "$JOB" >"$WORK/lie.json"
stop_daemon
cmp -s "$WORK/ref.json" "$WORK/lie.json" || { log "scenario 1 FAIL: result diverged"; exit 1; }
log "scenario 1 PASS: fsync-lie manifest recovered byte-identical"

# --- Scenario 2: persistent ENOSPC on cell-checkpoint renames. -------------
start_daemon "$WORK/enospc" 'op=rename;path=.cell;count=1000000;err=enospc'
JOB=$(submit)
STATE=$(await "$JOB")
# The contract is "byte-identical or a clean classified error, never
# silence": each cell must either match the reference exactly or carry an
# explicit ENOSPC error; a whole-job clean failure is also acceptable.
if [ "$STATE" = done ]; then
	result_of "$JOB" >"$WORK/enospc.json"
	ERRORED=$(jq '[.cells[] | select(.error != null)] | length' "$WORK/enospc.json")
	[ "$ERRORED" -ge 1 ] || { log "scenario 2 FAIL: fault never fired"; exit 1; }
	jq -e --argjson ref "$(jq -cS .cells "$WORK/ref.json")" \
		'[.cells, $ref] | transpose | all(
			(.[0].error != null and (.[0].error | contains("no space left"))) or .[0] == .[1]
		)' "$WORK/enospc.json" >/dev/null ||
		{ log "scenario 2 FAIL: a cell diverged without reporting an error"; exit 1; }
	log "scenario 2 PASS: $ERRORED cells report clean ENOSPC, the rest byte-identical"
elif [ "$STATE" = failed ] || [ "$STATE" = poisoned ]; then
	ERR=$(curl -sf "$BASE/v1/jobs/$JOB" | jq -r .error)
	log "scenario 2 PASS: clean reported error under ENOSPC: $ERR"
else
	log "scenario 2 FAIL: job stuck in $STATE"
	exit 1
fi
stop_daemon

# --- Scenario 3: bit rot on the state document at restart. -----------------
start_daemon "$WORK/rot"
JOB=$(submit)
for _ in $(seq 1 600); do
	DONE=$(curl -sf "$BASE/v1/jobs/$JOB" | jq -r '.sweep.done // 0')
	[ "$DONE" -ge 1 ] && break
	sleep 0.1
done
stop_daemon
log "scenario 3: daemon SIGKILLed after $DONE cells"
# The restarted daemon sees a bit-flipped state.json once; .prev recovers it.
start_daemon "$WORK/rot" 'op=read;path=state.json;flipbit=200;count=1'
[ "$(await "$JOB")" = done ] || { log "scenario 3: resume failed"; curl -s "$BASE/v1/jobs/$JOB" | jq .; exit 1; }
result_of "$JOB" >"$WORK/rot.json"
HEALTH=$(curl -sf "$BASE/debug/sops" | jq -c .health)
stop_daemon
cmp -s "$WORK/ref.json" "$WORK/rot.json" || { log "scenario 3 FAIL: result diverged"; exit 1; }
log "scenario 3 PASS: state-doc bit rot recovered (health: $HEALTH)"

log "PASS: all chaos scenarios ended byte-identical or cleanly reported"
