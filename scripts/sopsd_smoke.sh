#!/usr/bin/env bash
# sopsd crash-resume smoke test: start the daemon, submit a sweep job, kill
# the daemon with SIGKILL mid-sweep, restart it over the same store, and
# verify the job resumes from its checkpoints and finishes with a result
# byte-identical to the same job executed uninterrupted.
#
# Requires: go, curl, jq. Run from the repository root:
#
#	bash scripts/sopsd_smoke.sh
set -euo pipefail

ADDR=localhost:18724
BASE=http://$ADDR
WORK=$(mktemp -d)
PID=

cleanup() {
	[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT

log() { echo "smoke: $*"; }

go build -o "$WORK/sopsd" ./cmd/sopsd

start_daemon() {
	local dir=$1
	"$WORK/sopsd" -dir "$dir" -listen "$ADDR" -workers 1 \
		-sweep-checkpoint-steps 5000 >>"$WORK/sopsd.log" 2>&1 &
	PID=$!
	for _ in $(seq 1 100); do
		curl -sf "$BASE/v1/jobs" >/dev/null 2>&1 && return 0
		sleep 0.1
	done
	log "daemon did not come up; log follows"
	cat "$WORK/sopsd.log"
	exit 1
}

# A sweep big enough to still be in flight when the SIGKILL lands: 12 cells
# of 200k steps each on one worker.
SPEC='{
  "name": "smoke",
  "sweep": {
    "lambdas": [2, 4, 6],
    "gammas": [2, 4],
    "seeds": [1, 2],
    "counts": [10, 10],
    "steps": 200000
  }
}'

# --- Reference: the same job, uninterrupted. -------------------------------
start_daemon "$WORK/ref"
REF_ID=$(curl -sf -X POST "$BASE/v1/jobs" -d "$SPEC" | jq -r .id)
log "reference job $REF_ID submitted"
for _ in $(seq 1 600); do
	STATE=$(curl -sf "$BASE/v1/jobs/$REF_ID" | jq -r .state)
	[ "$STATE" = done ] && break
	[ "$STATE" = failed ] && { curl -s "$BASE/v1/jobs/$REF_ID" | jq .; exit 1; }
	sleep 0.5
done
[ "$STATE" = done ] || { log "reference job stuck in $STATE"; exit 1; }
curl -sf "$BASE/v1/jobs/$REF_ID" | jq -S .result >"$WORK/ref.json"
kill "$PID" && wait "$PID" 2>/dev/null || true
PID=
log "reference result captured ($(jq '.cells | length' "$WORK/ref.json") cells)"

# --- Interrupted: SIGKILL mid-sweep, restart, resume. ----------------------
start_daemon "$WORK/crash"
JOB_ID=$(curl -sf -X POST "$BASE/v1/jobs" -d "$SPEC" | jq -r .id)
log "crash-test job $JOB_ID submitted"
# Wait until the sweep has completed at least one cell but not all of them,
# so the kill lands mid-job with real checkpoint state on disk.
for _ in $(seq 1 600); do
	DONE=$(curl -sf "$BASE/v1/jobs/$JOB_ID" | jq -r '.sweep.done // 0')
	STATE=$(curl -sf "$BASE/v1/jobs/$JOB_ID" | jq -r .state)
	[ "$STATE" = done ] && break
	[ "$DONE" -ge 1 ] && break
	sleep 0.1
done
if [ "$STATE" != done ]; then
	kill -9 "$PID"
	wait "$PID" 2>/dev/null || true
	PID=
	log "daemon killed with SIGKILL after $DONE cells"
else
	log "WARNING: job finished before the kill; resume path not exercised"
fi

start_daemon "$WORK/crash"
log "daemon restarted over the same store"
for _ in $(seq 1 600); do
	STATE=$(curl -sf "$BASE/v1/jobs/$JOB_ID" | jq -r .state)
	[ "$STATE" = done ] && break
	[ "$STATE" = failed ] && { curl -s "$BASE/v1/jobs/$JOB_ID" | jq .; exit 1; }
	sleep 0.5
done
[ "$STATE" = done ] || { log "resumed job stuck in $STATE"; exit 1; }
curl -sf "$BASE/v1/jobs/$JOB_ID" | jq -S .result >"$WORK/resumed.json"
kill "$PID" && wait "$PID" 2>/dev/null || true
PID=

# --- Verdict: byte-identical results. --------------------------------------
if ! cmp -s "$WORK/ref.json" "$WORK/resumed.json"; then
	log "FAIL: resumed result differs from uninterrupted run"
	diff "$WORK/ref.json" "$WORK/resumed.json" | head -40 || true
	exit 1
fi
log "PASS: resumed result is byte-identical to the uninterrupted run"
