// Quickstart: build a 100-particle two-color system, run the separation
// chain with λ = γ = 4, and watch it compress and separate.
package main

import (
	"context"
	"fmt"
	"log"

	"sops"
)

func main() {
	sys, err := sops.New(sops.Options{
		Counts: []int{50, 50}, // 50 particles of each color
		Lambda: 4,             // favor having more neighbors (compression)
		Gamma:  4,             // favor like-colored neighbors (separation)
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("initial configuration:")
	fmt.Println(sys.ASCII())

	sys.Run(context.Background(), sops.RunSpec{
		Steps:       1_000_000,
		SampleEvery: 250_000,
		Observer: func(m sops.Snapshot) bool {
			fmt.Printf("after %8d steps: perimeter=%d (α=%.2f), heterogeneous edges=%d, segregation=%.2f, phase=%s\n",
				m.Steps, m.Perimeter, m.Alpha, m.HetEdges, m.Segregation, m.Phase)
			return true
		},
	})

	fmt.Println("\nfinal configuration:")
	fmt.Println(sys.ASCII())
}
