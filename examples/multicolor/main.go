// Multicolor runs the separation chain with k = 4 color classes — the
// extension the paper's conclusion (§5) reports works well in practice
// even though the proofs cover k = 2.
package main

import (
	"fmt"
	"log"

	"sops"
)

func main() {
	sys, err := sops.New(sops.Options{
		Counts: []int{20, 20, 20, 20},
		Lambda: 4,
		Gamma:  4,
		Seed:   4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("initial (random 4-coloring):")
	fmt.Println(sys.ASCII())

	sys.RunSteps(6_000_000)

	m := sys.Metrics()
	fmt.Printf("after %d steps: α=%.2f, heterogeneous edges=%d, segregation=%.2f\n\n",
		m.Steps, m.Alpha, m.HetEdges, m.Segregation)
	fmt.Println(sys.ASCII())
}
