// Distributed runs the separation algorithm on the asynchronous amoebot
// runtime: particles are independent agents activated concurrently by
// several goroutine workers, with conflicts between overlapping
// neighborhoods resolved by the runtime — the execution model of §2.1.
// The quiescent result matches the centralized chain's behavior.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"sops"
)

func main() {
	d, err := sops.NewDistributed(sops.Options{
		Counts: []int{40, 40},
		Lambda: 4,
		Gamma:  4,
		Seed:   2,
	})
	if err != nil {
		log.Fatal(err)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4 // concurrency is still exercised on few-core machines
	}
	// Audit the model's invariants every 500k activations while running.
	d.SetAuditEvery(500_000)
	fmt.Printf("running 2,000,000 activations across %d concurrent workers\n", workers)
	_, moves, swaps, err := d.RunContext(context.Background(), 2_000_000, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepted %d moves and %d swaps\n\n", moves, swaps)
	if err := d.CheckInvariants(); err != nil {
		log.Fatal(err)
	}

	snap := d.Snapshot()
	m := d.Metrics()
	fmt.Printf("connected=%v holeFree=%v α=%.2f segregation=%.2f phase=%s\n\n",
		snap.Connected(), snap.HoleFree(), m.Alpha, m.Segregation, m.Phase)
	fmt.Println(d.ASCII())
}
