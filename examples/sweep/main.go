// Sweep demonstrates the parallel sweep engine behind sops.Sweep: a λ×γ
// grid of independent systems sharded across all CPU cores, with progress
// reporting and cancellation via context.WithTimeout.
//
// The worker count never changes the results — only the wall-clock time.
// Rerun with SweepSpec.Workers set to 1 and the output is identical, cell
// for cell, because every cell's randomness derives only from its own
// (λ, γ, seed) coordinates.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"sops"
)

func main() {
	// The timeout turns a possibly long sweep into a bounded one: when it
	// fires, Sweep returns promptly with results for the cells that
	// finished and context.DeadlineExceeded for the rest.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	cells, err := sops.Sweep(ctx, sops.SweepSpec{
		Lambdas: []float64{0.25, 1.05, 4, 6},
		Gammas:  []float64{1, 1.05, 4, 6},
		Counts:  sops.Bichromatic(60),
		Layout:  sops.LayoutLine,
		Steps:   1_500_000,
		Seed:    5,
		Workers: 0, // GOMAXPROCS
		Observe: func(done, total int) {
			fmt.Printf("\r%d/%d cells", done, total)
		},
	})
	fmt.Println()
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Println("sweep timed out; showing the cells that finished")
	case err != nil:
		log.Fatal(err)
	}

	fmt.Printf("%8s %8s %7s %8s  %s\n", "lambda", "gamma", "alpha", "segr", "phase")
	for _, c := range cells {
		if c.Err != nil {
			fmt.Printf("%8.3g %8.3g  (cancelled)\n", c.Lambda, c.Gamma)
			continue
		}
		fmt.Printf("%8.3g %8.3g %7.3f %8.3f  %s\n",
			c.Lambda, c.Gamma, c.Snap.Alpha, c.Snap.Segregation, c.Snap.Phase)
	}
}
