// Phasediagram reproduces a small version of the paper's Figure 3: from
// one fixed initial configuration, run the chain at a grid of (λ, γ)
// values and classify each endpoint into one of the four phases —
// compressed/expanded × separated/integrated.
package main

import (
	"fmt"
	"log"

	"sops/internal/experiments"
)

func main() {
	lambdas := []float64{1.05, 4}
	gammas := []float64{1, 6}
	cells, err := experiments.Figure3(60, lambdas, gammas, 2_000_000, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s %8s %7s %8s  %s\n", "lambda", "gamma", "alpha", "segr", "phase")
	for _, c := range cells {
		fmt.Printf("%8.3g %8.3g %7.3f %8.3f  %s\n",
			c.Lambda, c.Gamma, c.Snap.Alpha, c.Snap.Segregation, c.Snap.Phase)
	}
}
