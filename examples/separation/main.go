// Separation reproduces the paper's Figure 2 workload at reduced scale:
// a 100-particle bichromatic system under λ = 4, γ = 4 starting from a
// worst-case line, rendered at geometric checkpoints. Most compression and
// separation happens in the first million iterations, as the paper
// observes.
package main

import (
	"fmt"
	"log"

	"sops"
)

func main() {
	sys, err := sops.New(sops.Options{
		Counts: []int{50, 50},
		Layout: sops.LayoutLine, // adversarial start: maximal perimeter
		Lambda: 4,
		Gamma:  4,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}

	checkpoints := []uint64{0, 50_000, 200_000, 1_000_000, 5_000_000}
	var done uint64
	for _, cp := range checkpoints {
		sys.RunSteps(cp - done)
		done = cp
		m := sys.Metrics()
		fmt.Printf("=== after %d iterations: α=%.2f, h=%d, segregation=%.2f, phase=%s ===\n",
			cp, m.Alpha, m.HetEdges, m.Segregation, m.Phase)
		fmt.Println(sys.ASCII())
	}
}
