// Integration demonstrates the paper's counterintuitive negative result
// (Theorem 16): with γ slightly above one — particles still prefer
// like-colored neighbors! — the system does NOT separate. Starting from a
// fully separated configuration, the chain destroys the separation and
// stays compressed-integrated, while a large-γ control preserves it.
package main

import (
	"fmt"
	"log"

	"sops"
)

func main() {
	// γ = 81/79 ≈ 1.025 > 1: inside the paper's provable integration window.
	run("gamma = 81/79 (integration regime)", 81.0/79.0)
	// Control: γ = 4 keeps the separated start separated.
	run("gamma = 4 (separation regime)", 4)
}

func run(label string, gamma float64) {
	sys, err := sops.New(sops.Options{
		Counts:    []int{50, 50},
		Separated: true, // start fully separated
		Lambda:    4,
		Gamma:     gamma,
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := sys.Metrics()
	sys.RunSteps(3_000_000)
	end := sys.Metrics()
	fmt.Printf("=== %s ===\n", label)
	fmt.Printf("start: h=%3d segregation=%.2f phase=%s\n", start.HetEdges, start.Segregation, start.Phase)
	fmt.Printf("end:   h=%3d segregation=%.2f phase=%s\n\n", end.HetEdges, end.Segregation, end.Phase)
	fmt.Println(sys.ASCII())
}
