package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"sops"
	"sops/internal/seal"
	"sops/internal/snapbin"
	"sops/internal/telemetry"
)

// runConvert transcodes one durable artifact between the binary snapbin
// wire format and the text interchange formats (JSON, JSONL, CSV), both
// directions lossless except the CSV export (rounded floats, no way back).
//
// The input kind is sniffed, not declared: the seal envelope is unwrapped
// if present, a snapbin frame header names its kind directly, and text
// payloads are classified by their JSON shape (a manifest document carries
// "spec", a checkpoint document "rng", a JSONL trace is a stream of sample
// objects). The output format follows the -o extension: ".json"/".jsonl"
// select text, ".csv" the trace table, anything else the sealed binary
// form.
func runConvert(in, out string) error {
	if out == "" {
		return fmt.Errorf("-convert requires -o <output path>")
	}
	raw, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	payload := raw
	if seal.Sealed(raw) {
		if payload, err = seal.Decode(raw); err != nil {
			return err
		}
	}
	wantText := strings.HasSuffix(out, ".json") || strings.HasSuffix(out, ".jsonl") ||
		strings.HasSuffix(out, ".ndjson") || strings.HasSuffix(out, ".csv")

	if snapbin.IsFrame(payload) {
		h, err := snapbin.ParseHeader(payload)
		if err != nil {
			return err
		}
		switch h.Kind {
		case snapbin.KindCheckpoint:
			return convertCheckpoint(payload, out, wantText)
		case snapbin.KindTrace:
			samples, err := telemetry.ParseBinary(payload)
			if err != nil {
				return err
			}
			return writeTrace(samples, out)
		case snapbin.KindManifest:
			return convertManifest(payload, out, wantText)
		default:
			return fmt.Errorf("convert: frame kind %d has no conversion", h.Kind)
		}
	}

	// Text input: classify by JSON shape — a manifest document carries
	// "spec", a checkpoint document "rngState", and a JSONL trace is a
	// stream of sample objects carrying "steps".
	trimmed := strings.TrimSpace(string(payload))
	if strings.HasPrefix(trimmed, "{") {
		var probe struct {
			Spec  json.RawMessage `json:"spec"`
			Rng   json.RawMessage `json:"rngState"`
			Steps json.RawMessage `json:"steps"`
		}
		head := trimmed
		if i := strings.IndexByte(head, '\n'); i >= 0 && json.Valid([]byte(head[:i])) {
			head = head[:i] // JSONL: classify by the first object only
		}
		if err := json.Unmarshal([]byte(head), &probe); err == nil {
			switch {
			case probe.Spec != nil:
				return convertManifest(payload, out, wantText)
			case probe.Rng != nil:
				return convertCheckpoint(payload, out, wantText)
			case probe.Steps != nil:
				samples, err := telemetry.ParseJSONL(payload)
				if err != nil {
					return err
				}
				return writeTrace(samples, out)
			}
		}
	}
	return fmt.Errorf("convert: %s is not a recognized artifact (checkpoint, trace, or sweep manifest)", in)
}

// convertCheckpoint round-trips the checkpoint through a live System, so
// the output is exactly what the matching writer produces: a sealed
// binary frame, or the sealed JSON document for ".json". Restore+encode
// is checkpoint-exact, so the converted file resumes the same trajectory.
func convertCheckpoint(payload []byte, out string, wantText bool) error {
	sys, err := sops.Restore(payload, nil)
	if err != nil {
		return err
	}
	if wantText {
		data, err := sys.Checkpoint()
		if err != nil {
			return err
		}
		if err := seal.WriteFile(out, data, 0o644); err != nil {
			return err
		}
	} else if err := sys.WriteCheckpoint(out); err != nil {
		return err
	}
	fmt.Printf("converted checkpoint (step %d, n=%d) to %s\n", sys.Steps(), sys.Metrics().N, out)
	return nil
}

// convertManifest transcodes a sweep manifest, keeping the spec key bytes
// untouched so the converted file resumes under exactly the same spec.
func convertManifest(payload []byte, out string, wantText bool) error {
	data, err := sops.ConvertSweepManifest(payload, !wantText)
	if err != nil {
		return err
	}
	if err := seal.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("converted sweep manifest to %s\n", out)
	return nil
}

// writeTrace re-emits parsed trace samples in the format the output
// extension names (.sbt binary, .jsonl/.ndjson, or CSV).
func writeTrace(samples []telemetry.Sample, out string) error {
	rec := telemetry.NewRecorder(max(1, len(samples)), 0)
	for _, s := range samples {
		rec.Record(s)
	}
	if err := rec.WriteFile(out); err != nil {
		return err
	}
	fmt.Printf("converted %d trace samples to %s\n", len(samples), out)
	return nil
}
