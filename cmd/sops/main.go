// Command sops runs a single separation/integration simulation and reports
// its progress and final state.
//
// Usage:
//
//	sops -n 100 -k 2 -lambda 4 -gamma 4 -iters 5000000 -progress 10 -ascii
//
// Flags select the workload (particle count, color classes, initial
// layout), the bias parameters, and the reporting (progress lines, final
// ASCII art, optional SVG file).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"sops"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sops:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int("n", 100, "total number of particles")
		k         = flag.Int("k", 2, "number of color classes (split evenly)")
		lambda    = flag.Float64("lambda", 4, "neighbor bias λ")
		gamma     = flag.Float64("gamma", 4, "like-color bias γ")
		iters     = flag.Uint64("iters", 5_000_000, "chain iterations")
		seed      = flag.Uint64("seed", 1, "random seed")
		line      = flag.Bool("line", false, "start from a line instead of a spiral")
		separated = flag.Bool("separated", false, "start fully separated")
		noswap    = flag.Bool("noswap", false, "disable swap moves")
		progress  = flag.Int("progress", 10, "number of progress lines")
		ascii     = flag.Bool("ascii", true, "print final configuration as ASCII")
		svgPath   = flag.String("svg", "", "write final configuration as SVG to this path")
		workers   = flag.Int("workers", 0, "run on the distributed amoebot runtime with this many concurrent workers (0 = centralized chain)")
	)
	flag.Parse()

	counts := make([]int, *k)
	for i := range counts {
		counts[i] = *n / *k
		if i < *n%*k {
			counts[i]++
		}
	}
	layout := sops.LayoutSpiral
	if *line {
		layout = sops.LayoutLine
	}
	if *workers > 0 {
		return runDistributed(counts, layout, *separated, *lambda, *gamma, *noswap, *seed, *iters, *workers, *ascii)
	}
	sys, err := sops.New(sops.Options{
		Counts:       counts,
		Layout:       layout,
		Separated:    *separated,
		Lambda:       *lambda,
		Gamma:        *gamma,
		DisableSwaps: *noswap,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("n=%d colors=%d λ=%g γ=%g iters=%d seed=%d\n", *n, *k, *lambda, *gamma, *iters, *seed)
	fmt.Printf("%12s %6s %6s %7s %5s %5s %8s %8s  %s\n",
		"steps", "perim", "p_min", "alpha", "edges", "het", "segr", "cluster", "phase")
	printRow := func(m sops.Snapshot) {
		fmt.Printf("%12d %6d %6d %7.3f %5d %5d %8.3f %8.3f  %s\n",
			m.Steps, m.Perimeter, m.MinPerimeter, m.Alpha, m.Edges, m.HetEdges,
			m.Segregation, m.LargestFrac, m.Phase)
	}
	printRow(sys.Metrics())
	if *progress > 0 && *iters > 0 {
		interval := *iters / uint64(*progress)
		if interval == 0 {
			interval = 1
		}
		sys.RunWith(*iters, interval, func(m sops.Snapshot) bool {
			printRow(m)
			return true
		})
	} else {
		sys.Run(*iters)
		printRow(sys.Metrics())
	}

	st := sys.Stats()
	fmt.Printf("accepted: %d moves, %d swaps, %d rejected (%.1f%% acceptance)\n",
		st.Moves, st.Swaps, st.Rejected,
		100*float64(st.Moves+st.Swaps)/float64(st.Steps))
	if *ascii {
		fmt.Println(sys.ASCII())
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sys.RenderSVG(f); err != nil {
			return err
		}
		fmt.Println("wrote", *svgPath)
	}
	return nil
}

// runDistributed executes the workload on the concurrent amoebot runtime.
func runDistributed(counts []int, layout sops.Layout, separated bool, lambda, gamma float64, noswap bool, seed, iters uint64, workers int, ascii bool) error {
	d, err := sops.NewDistributed(sops.Options{
		Counts:       counts,
		Layout:       layout,
		Separated:    separated,
		Lambda:       lambda,
		Gamma:        gamma,
		DisableSwaps: noswap,
		Seed:         seed,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Printf("distributed runtime: %d workers, %d activations\n", workers, iters)
	performed, moves, swaps, err := d.RunContext(ctx, iters, workers)
	if err != nil {
		fmt.Printf("interrupted after %d activations (%v)\n", performed, err)
	}
	m := d.Metrics()
	fmt.Printf("accepted %d moves, %d swaps; α=%.3f h=%d segregation=%.3f phase=%s\n",
		moves, swaps, m.Alpha, m.HetEdges, m.Segregation, m.Phase)
	snap := d.Snapshot()
	fmt.Printf("connected=%v holeFree=%v\n", snap.Connected(), snap.HoleFree())
	if ascii {
		fmt.Println(d.ASCII())
	}
	return nil
}
