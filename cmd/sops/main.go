// Command sops runs a single separation/integration simulation and reports
// its progress and final state.
//
// Usage:
//
//	sops -n 100 -k 2 -lambda 4 -gamma 4 -iters 5000000 -progress 10 -ascii
//
// Flags select the workload (particle count, color classes, initial
// layout), the bias parameters, and the reporting (progress lines, final
// ASCII art, optional SVG file).
//
// Long centralized runs survive crashes with -checkpoint: the chain state
// is written atomically on an interval (and on Ctrl-C), and -resume
// continues the exact trajectory. On the distributed runtime
// (-workers > 0), -crash-prob/-drop-frac/-stall-prob inject deterministic
// faults seeded by -fault-seed, and -audit-every verifies the model's
// invariants while the run is in flight.
//
// Runs are observable while in flight: -listen starts a local debug server
// with live counters (/debug/sops), expvar (/debug/vars) and pprof
// (/debug/pprof/), and -trace records the trajectory to a CSV, JSONL or
// binary .sbt file on the -trace-every cadence.
//
// -convert transcodes durable artifacts between the binary snapbin wire
// format and the text interchange formats, sniffing the input kind:
//
//	sops -convert run.ckpt -o run.json        # binary checkpoint → JSON
//	sops -convert run.json -o run.ckpt        # and back, checkpoint-exact
//	sops -convert trace.sbt -o trace.jsonl    # binary trace → JSON lines
//	sops -convert trace.jsonl -o trace.sbt    # and back, losslessly
//	sops -convert trace.sbt -o trace.csv      # one-way table export
//	sops -convert sweep.ckpt -o sweep.json    # sweep manifest, either way
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"sops"
	"sops/internal/atomicio"
	"sops/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sops:", friendly(err))
		os.Exit(1)
	}
}

// friendly rewrites the library's named validation errors in terms of this
// command's flags, so a bad invocation says which flag to fix instead of
// echoing an internal error chain.
func friendly(err error) string {
	switch {
	case errors.Is(err, sops.ErrNoCounts):
		return "-n and -k must describe at least one particle per color class"
	case errors.Is(err, sops.ErrBadLambda):
		return "-lambda must be positive and finite"
	case errors.Is(err, sops.ErrBadGamma):
		return "-gamma must be positive and finite"
	case errors.Is(err, sops.ErrBadLayout):
		return "initial layout must be the spiral default or -line"
	case errors.Is(err, sops.ErrUnknownModel):
		return "-model must name a registered model; see -list-models"
	case errors.Is(err, sops.ErrBadCoupling):
		return "-couplings must list name=value pairs the -model declares; see -list-models"
	}
	return err.Error()
}

// parseCouplings parses the -couplings flag: comma-separated name=value
// pairs, e.g. "lambda=4,alpha=6".
func parseCouplings(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("-couplings entry %q is not name=value", pair)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("-couplings %s: %v", name, err)
		}
		out[strings.TrimSpace(name)] = v
	}
	return out, nil
}

// listModels prints the registered models, their couplings and their
// observables.
func listModels() {
	for _, m := range sops.Models() {
		fmt.Printf("%s\n", m.Name)
		for _, c := range m.Couplings {
			kind := ""
			if c.Integer {
				kind = ", integer"
			}
			fmt.Printf("  coupling %-12s (default %g%s)\n", c.Name, c.Default, kind)
		}
		for _, o := range m.Observables {
			fmt.Printf("  observable %s\n", o)
		}
	}
}

func run() error {
	var (
		n         = flag.Int("n", 100, "total number of particles")
		k         = flag.Int("k", 2, "number of color classes (split evenly)")
		lambda    = flag.Float64("lambda", 4, "neighbor bias λ")
		gamma     = flag.Float64("gamma", 4, "like-color bias γ")
		model     = flag.String("model", "", "dynamics model to run (default separation; see -list-models)")
		couplings = flag.String("couplings", "", "model coupling overrides as name=value,... (e.g. alpha=6,beta=2)")
		listM     = flag.Bool("list-models", false, "list registered models with their couplings and observables, then exit")
		iters     = flag.Uint64("iters", 5_000_000, "chain iterations")
		seed      = flag.Uint64("seed", 1, "random seed")
		line      = flag.Bool("line", false, "start from a line instead of a spiral")
		separated = flag.Bool("separated", false, "start fully separated")
		noswap    = flag.Bool("noswap", false, "disable swap moves")
		progress  = flag.Int("progress", 10, "number of progress lines")
		ascii     = flag.Bool("ascii", true, "print final configuration as ASCII")
		svgPath   = flag.String("svg", "", "write final configuration as SVG to this path")
		workers   = flag.Int("workers", 0, "run on the distributed amoebot runtime with this many concurrent workers (0 = centralized chain)")

		ckpt      = flag.String("checkpoint", "", "checkpoint the chain state to this file on an interval (atomic; centralized runs)")
		ckptEvery = flag.Uint64("checkpoint-every", 1_000_000, "steps between checkpoint writes")
		resume    = flag.Bool("resume", false, "resume the run from the -checkpoint file")

		listen = flag.String("listen", "", "serve live status, expvar and pprof on this address (e.g. localhost:6060)")
		trace  = flag.String("trace", "", "record the trajectory to this file (.csv, .jsonl/.ndjson for JSON lines, or .sbt for the packed binary trace)")

		convert    = flag.String("convert", "", "convert an artifact (checkpoint, trace, or sweep manifest) to the format -o names, then exit")
		outPath    = flag.String("o", "", "output path for -convert (extension selects the format)")
		traceEvery = flag.Uint64("trace-every", 100_000, "steps between trace samples")

		faultSeed  = flag.Uint64("fault-seed", 0, "fault-injection seed (distributed runs)")
		crashProb  = flag.Float64("crash-prob", 0, "per-slot probability an activation source crash-stops")
		crashLen   = flag.Uint64("crash-len", 0, "activation slots a crash lasts (0 = default)")
		dropFrac   = flag.Float64("drop-frac", 0, "fraction of activation slots dropped")
		stallProb  = flag.Float64("stall-prob", 0, "per-activation probability of a lock-boundary stall")
		auditEvery = flag.Uint64("audit-every", 0, "verify invariants every this many activations (0 = off)")
	)
	flag.Parse()

	if *listM {
		listModels()
		return nil
	}
	if *convert != "" {
		return runConvert(*convert, *outPath)
	}
	coupMap, err := parseCouplings(*couplings)
	if err != nil {
		return err
	}

	counts := make([]int, *k)
	for i := range counts {
		counts[i] = *n / *k
		if i < *n%*k {
			counts[i]++
		}
	}
	layout := sops.LayoutSpiral
	if *line {
		layout = sops.LayoutLine
	}
	if *workers > 0 {
		if *model != "" && *model != "separation" {
			return fmt.Errorf("the distributed amoebot runtime runs only the separation model (got -model %s)", *model)
		}
		faults := sops.FaultOptions{
			Seed:      *faultSeed,
			CrashProb: *crashProb,
			CrashLen:  *crashLen,
			DropFrac:  *dropFrac,
			StallProb: *stallProb,
		}
		return runDistributed(counts, layout, *separated, *lambda, *gamma, *noswap, *seed, *iters, *workers, *ascii, faults, *auditEvery, *listen)
	}
	var sys *sops.System
	if *resume {
		if *ckpt == "" {
			return fmt.Errorf("-resume requires -checkpoint")
		}
		if sys, err = sops.RestoreFile(*ckpt, nil); err != nil {
			return err
		}
		fmt.Printf("resumed from %s at step %d\n", *ckpt, sys.Steps())
	} else {
		sys, err = sops.New(sops.Options{
			Counts:       counts,
			Layout:       layout,
			Separated:    *separated,
			Lambda:       *lambda,
			Gamma:        *gamma,
			Model:        *model,
			Couplings:    coupMap,
			DisableSwaps: *noswap,
			Seed:         *seed,
		})
		if err != nil {
			return err
		}
	}
	if *ckpt != "" {
		sys.SetAutoCheckpoint(*ckpt, *ckptEvery)
	}

	probe := sops.NewProbe()
	var rec *sops.Recorder
	if *trace != "" {
		rec = sops.NewRecorder(1<<16, *traceEvery)
	}
	if *listen != "" {
		srv := telemetry.NewServer(telemetry.Sources{
			Probe:    probe,
			Recorder: rec,
			Info: map[string]any{
				"workload": "centralized chain",
				"n":        *n, "colors": *k, "lambda": *lambda, "gamma": *gamma,
				"iters": *iters, "seed": *seed,
			},
		})
		addr, err := srv.Start(*listen)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("debug server on http://%s/debug/sops (also /debug/vars, /debug/pprof/)\n", addr)
	}

	fmt.Printf("n=%d colors=%d λ=%g γ=%g iters=%d seed=%d\n", *n, *k, *lambda, *gamma, *iters, *seed)
	fmt.Printf("%12s %6s %6s %7s %5s %5s %8s %8s  %s\n",
		"steps", "perim", "p_min", "alpha", "edges", "het", "segr", "cluster", "phase")
	printRow := func(m sops.Snapshot) {
		fmt.Printf("%12d %6d %6d %7.3f %5d %5d %8.3f %8.3f  %s\n",
			m.Steps, m.Perimeter, m.MinPerimeter, m.Alpha, m.Edges, m.HetEdges,
			m.Segregation, m.LargestFrac, m.Phase)
	}
	printRow(sys.Metrics())
	// Ctrl-C cancels the run; with -checkpoint the state at the moment of
	// interruption is flushed, so -resume picks up exactly there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var remaining uint64
	if sys.Steps() < *iters {
		remaining = *iters - sys.Steps()
	}
	interval := remaining
	if *progress > 0 {
		interval = remaining / uint64(*progress)
	}
	if interval == 0 {
		interval = 1
	}
	// The run samples at the finer of the progress and trace cadences; the
	// observer prints only the progress rows, the recorder keeps its own.
	sample := interval
	if rec != nil && *traceEvery > 0 && *traceEvery < sample {
		sample = *traceEvery
	}
	if _, err := sys.Run(ctx, sops.RunSpec{
		Steps:       remaining,
		SampleEvery: sample,
		Observer: func(m sops.Snapshot) bool {
			if sample == interval || m.Steps%interval == 0 || m.Steps >= *iters {
				printRow(m)
			}
			return true
		},
		Telemetry: &sops.Telemetry{Probe: probe, Recorder: rec},
	}); err != nil {
		if !errors.Is(err, context.Canceled) {
			return err
		}
		msg := "interrupted"
		if *ckpt != "" {
			msg += "; state checkpointed to " + *ckpt + " (continue with -resume)"
		}
		fmt.Println(msg)
	}
	if rec != nil {
		if err := rec.WriteFile(*trace); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace samples to %s\n", rec.Len(), *trace)
	}

	st := sys.Stats()
	fmt.Printf("accepted: %d moves, %d swaps, %d rejected (%.1f%% acceptance)\n",
		st.Moves, st.Swaps, st.Rejected,
		100*float64(st.Moves+st.Swaps)/float64(st.Steps))
	if name := sys.Model(); name != "separation" {
		names, vals := sys.Observables()
		parts := make([]string, len(names))
		for i := range names {
			parts[i] = fmt.Sprintf("%s=%.4f", names[i], vals[i])
		}
		fmt.Printf("model %s: %s\n", name, strings.Join(parts, " "))
	}
	if *ascii {
		fmt.Println(sys.ASCII())
	}
	if *svgPath != "" {
		f, err := atomicio.Create(*svgPath)
		if err != nil {
			return err
		}
		if err := sys.RenderSVG(f); err != nil {
			f.Abort()
			return err
		}
		if err := f.Commit(); err != nil {
			return err
		}
		fmt.Println("wrote", *svgPath)
	}
	return nil
}

// runDistributed executes the workload on the concurrent amoebot runtime,
// optionally under deterministic fault injection and invariant auditing.
func runDistributed(counts []int, layout sops.Layout, separated bool, lambda, gamma float64, noswap bool, seed, iters uint64, workers int, ascii bool, faults sops.FaultOptions, auditEvery uint64, listen string) error {
	d, err := sops.NewDistributed(sops.Options{
		Counts:       counts,
		Layout:       layout,
		Separated:    separated,
		Lambda:       lambda,
		Gamma:        gamma,
		DisableSwaps: noswap,
		Seed:         seed,
	})
	if err != nil {
		return err
	}
	probe := sops.NewProbe()
	d.SetProbe(probe)
	if listen != "" {
		srv := telemetry.NewServer(telemetry.Sources{
			Probe: probe,
			Info: map[string]any{
				"workload": "distributed amoebot runtime",
				"workers":  workers, "lambda": lambda, "gamma": gamma,
				"activations": iters, "seed": seed,
			},
		})
		addr, err := srv.Start(listen)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("debug server on http://%s/debug/sops (also /debug/vars, /debug/pprof/)\n", addr)
	}
	injecting := faults.CrashProb > 0 || faults.DropFrac > 0 || faults.StallProb > 0
	if injecting {
		if err := d.EnableFaults(faults); err != nil {
			return err
		}
		fmt.Printf("fault injection armed: seed=%d crashProb=%g dropFrac=%g stallProb=%g\n",
			faults.Seed, faults.CrashProb, faults.DropFrac, faults.StallProb)
	}
	d.SetAuditEvery(auditEvery)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Printf("distributed runtime: %d workers, %d activations\n", workers, iters)
	performed, moves, swaps, err := d.RunContext(ctx, iters, workers)
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			return err // an invariant audit failed: the run is not trustworthy
		}
		fmt.Printf("interrupted after %d activations (%v)\n", performed, err)
	}
	if injecting {
		st := d.FaultStats()
		fmt.Printf("faults: %d crashes, %d restarts, %d dropped slots, %d stalls\n",
			st.Crashes, st.Restarts, st.Dropped, st.Stalls)
	}
	m := d.Metrics()
	fmt.Printf("accepted %d moves, %d swaps; α=%.3f h=%d segregation=%.3f phase=%s\n",
		moves, swaps, m.Alpha, m.HetEdges, m.Segregation, m.Phase)
	if err := d.CheckInvariants(); err != nil {
		return fmt.Errorf("final invariant audit: %w", err)
	}
	snap := d.Snapshot()
	fmt.Printf("connected=%v holeFree=%v (invariants verified)\n", snap.Connected(), snap.HoleFree())
	if ascii {
		fmt.Println(d.ASCII())
	}
	return nil
}
