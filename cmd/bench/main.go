// Command bench converts `go test -bench` output into a machine-readable
// JSON report and optionally compares it against a committed baseline.
//
// Usage:
//
//	go test -run '^$' -bench 'ChainStep|MetricsSnapshot' . | bench -out BENCH.json
//	go test -run '^$' -bench ChainStep . | bench -baseline BENCH_PR3.json
//
// With -baseline, regressions beyond -threshold (relative) are listed on
// stderr and the exit status is 1, so CI can surface them; gate blocking
// behavior with the workflow's continue-on-error instead of a flag here.
package main

import (
	"flag"
	"fmt"
	"os"

	"sops/internal/benchio"
)

func main() {
	out := flag.String("out", "", "write the parsed report as JSON to this file")
	baseline := flag.String("baseline", "", "compare against this committed report")
	threshold := flag.Float64("threshold", 0.30, "relative degradation tolerated before reporting")
	flag.Parse()

	rep, err := benchio.Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(rep.Results) == 0 {
		fatal(fmt.Errorf("bench: no benchmark lines on stdin"))
	}
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("bench: wrote %d results to %s\n", len(rep.Results), *out)
	}
	if *baseline != "" {
		base, err := benchio.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		regs := benchio.Compare(base, rep, *threshold)
		if len(regs) == 0 {
			fmt.Printf("bench: no regressions against %s (threshold %.0f%%)\n",
				*baseline, *threshold*100)
			return
		}
		fmt.Fprintf(os.Stderr, "bench: %d regression(s) against %s:\n", len(regs), *baseline)
		for _, g := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", g)
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
