// Command bench converts `go test -bench` output into a machine-readable
// JSON report and optionally compares it against a committed baseline.
//
// It has two modes. By default it parses benchmark output from stdin:
//
//	go test -run '^$' -bench 'ChainStep|MetricsSnapshot' . | bench -out BENCH.json
//	go test -run '^$' -bench ChainStep . | bench -baseline BENCH_PR3.json
//
// With -bench it runs `go test` itself, tees the raw output through, and
// parses the result — the one-command path for profiling and baselines:
//
//	bench -bench 'ChainStep$|ChainStepSwapPath$' -count 5 -out BENCH.json
//	bench -bench ChainStep$ -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Repeated runs (-count > 1) are folded per benchmark by
// benchio.AggregateMin — min ns/op, max throughput — so reports and
// baseline comparisons see the least-noise estimate; the same folding
// applies to stdin input carrying -count output. With -baseline,
// regressions beyond -threshold (relative) are listed on stderr and the
// exit status is 1, so CI can surface them; gate blocking behavior with
// the workflow's continue-on-error instead of a flag here.
//
// -map renames results before the baseline comparison, so a variant
// benchmark can be held against a different baseline entry — the telemetry
// overhead gate compares the probe-attached kernel to the plain one:
//
//	bench -bench ChainStepProbe$ -map BenchmarkChainStepProbe=BenchmarkChainStep -baseline BENCH_PR4.json -threshold 0.05
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"sops/internal/benchio"
)

func main() {
	out := flag.String("out", "", "write the parsed report as JSON to this file")
	baseline := flag.String("baseline", "", "compare against this committed report")
	threshold := flag.Float64("threshold", 0.30, "relative degradation tolerated before reporting")
	bench := flag.String("bench", "", "run `go test -bench` with this regexp instead of reading stdin")
	pkg := flag.String("pkg", ".", "package to benchmark in runner mode")
	count := flag.Int("count", 1, "runner mode: -count passed to go test; runs are folded min-of-N")
	benchtime := flag.String("benchtime", "", "runner mode: -benchtime passed to go test (e.g. 2s, 100000x)")
	cpuprofile := flag.String("cpuprofile", "", "runner mode: write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "runner mode: write an allocation profile to this file")
	mapping := flag.String("map", "", "rename results before comparing: comma-separated old=new pairs")
	flag.Parse()
	renames, err := parseRenames(*mapping)
	if err != nil {
		fatal(err)
	}

	var src io.Reader = os.Stdin
	var cmd *exec.Cmd
	if *bench != "" {
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-count", fmt.Sprint(*count)}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		if *cpuprofile != "" {
			args = append(args, "-cpuprofile", *cpuprofile)
		}
		if *memprofile != "" {
			args = append(args, "-memprofile", *memprofile)
		}
		args = append(args, *pkg)
		fmt.Printf("bench: go %s\n", strings.Join(args, " "))
		cmd = exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			fatal(err)
		}
		if err := cmd.Start(); err != nil {
			fatal(err)
		}
		// Tee the raw benchmark lines through so the run stays readable,
		// while Parse consumes the same stream.
		src = io.TeeReader(pipe, os.Stdout)
	}

	rep, err := benchio.Parse(src)
	if err != nil {
		fatal(err)
	}
	if cmd != nil {
		if err := cmd.Wait(); err != nil {
			fatal(fmt.Errorf("bench: go test: %w", err))
		}
	}
	if len(rep.Results) == 0 {
		fatal(fmt.Errorf("bench: no benchmark lines in input"))
	}
	rep.AggregateMin()
	for i, r := range rep.Results {
		if to, ok := renames[r.Name]; ok {
			rep.Results[i].Name = to
		}
	}
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("bench: wrote %d results to %s\n", len(rep.Results), *out)
	}
	if *baseline != "" {
		base, err := benchio.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		regs := benchio.Compare(base, rep, *threshold)
		if len(regs) == 0 {
			fmt.Printf("bench: no regressions against %s (threshold %.0f%%)\n",
				*baseline, *threshold*100)
			return
		}
		fmt.Fprintf(os.Stderr, "bench: %d regression(s) against %s:\n", len(regs), *baseline)
		for _, g := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", g)
		}
		os.Exit(1)
	}
}

// parseRenames parses the -map value ("old=new,old2=new2") into a rename
// table.
func parseRenames(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		from, to, ok := strings.Cut(pair, "=")
		if !ok || from == "" || to == "" {
			return nil, fmt.Errorf("bench: bad -map entry %q (want old=new)", pair)
		}
		out[from] = to
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
