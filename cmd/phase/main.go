// Command phase sweeps the (λ, γ) grid and prints the Figure 3 phase
// diagram: each cell is the phase the system reaches from a common initial
// configuration after a fixed number of iterations.
//
// Usage:
//
//	phase -n 100 -iters 5000000 -lambdas 1.05,1.5,4,6 -gammas 1,1.05,4,6
//
// The paper runs 5·10⁷ iterations per cell; the default here is smaller so
// the sweep finishes in minutes. Pass -iters 50000000 for paper scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sops/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "phase:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n       = flag.Int("n", 100, "total number of particles (two colors)")
		iters   = flag.Uint64("iters", 5_000_000, "iterations per grid cell")
		seed    = flag.Uint64("seed", 1, "random seed")
		lambdas = flag.String("lambdas", "", "comma-separated λ values (default grid)")
		gammas  = flag.String("gammas", "", "comma-separated γ values (default grid)")
	)
	flag.Parse()

	ls, gs := experiments.DefaultPhaseGrid()
	var err error
	if *lambdas != "" {
		if ls, err = parseFloats(*lambdas); err != nil {
			return fmt.Errorf("-lambdas: %w", err)
		}
	}
	if *gammas != "" {
		if gs, err = parseFloats(*gammas); err != nil {
			return fmt.Errorf("-gammas: %w", err)
		}
	}

	fmt.Printf("phase diagram: n=%d iters=%d seed=%d\n\n", *n, *iters, *seed)
	cells, err := experiments.Figure3(*n, ls, gs, *iters, *seed)
	if err != nil {
		return err
	}

	fmt.Printf("%8s %8s %7s %7s %8s  %s\n", "lambda", "gamma", "alpha", "het", "segr", "phase")
	for _, c := range cells {
		fmt.Printf("%8.3g %8.3g %7.3f %7d %8.3f  %s\n",
			c.Lambda, c.Gamma, c.Snap.Alpha, c.Snap.HetEdges, c.Snap.Segregation, c.Snap.Phase)
	}

	// Compact grid view (rows: γ descending; columns: λ ascending).
	byKey := make(map[[2]float64]string, len(cells))
	for _, c := range cells {
		byKey[[2]float64{c.Lambda, c.Gamma}] = shortPhase(c.Snap.Phase.String())
	}
	fmt.Printf("\n%8s", "γ \\ λ")
	for _, l := range ls {
		fmt.Printf(" %6.3g", l)
	}
	fmt.Println()
	for i := len(gs) - 1; i >= 0; i-- {
		fmt.Printf("%8.3g", gs[i])
		for _, l := range ls {
			fmt.Printf(" %6s", byKey[[2]float64{l, gs[i]}])
		}
		fmt.Println()
	}
	fmt.Println("\nCS=compressed-separated CI=compressed-integrated ES=expanded-separated EI=expanded-integrated")
	return nil
}

func shortPhase(name string) string {
	switch name {
	case "compressed-separated":
		return "CS"
	case "compressed-integrated":
		return "CI"
	case "expanded-separated":
		return "ES"
	case "expanded-integrated":
		return "EI"
	}
	return "?"
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
