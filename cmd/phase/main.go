// Command phase sweeps the (λ, γ) grid and prints the Figure 3 phase
// diagram: each cell is the phase the system reaches from a common initial
// configuration after a fixed number of iterations.
//
// Usage:
//
//	phase -n 100 -iters 5000000 -lambdas 1.05,1.5,4,6 -gammas 1,1.05,4,6 -workers 8
//
// Cells run in parallel on the sweep engine (-workers, default GOMAXPROCS);
// the printed diagram is byte-identical at any worker count. Interrupting
// with Ctrl-C (or hitting -timeout) cancels the sweep promptly and prints
// the cells that finished.
//
// Long sweeps survive crashes with -checkpoint: completed cells land in an
// atomically-replaced manifest, and -resume continues an interrupted sweep
// without recomputing them (byte-identical to the uninterrupted output).
// Transient per-cell failures can be retried with -retries. With -o the
// diagram is also written atomically to a file.
//
// -listen starts a local debug server while the sweep runs: /debug/sops
// reports live done/running/failed cell counts, retries and an ETA,
// /debug/vars serves the same via expvar, and /debug/pprof/ profiles the
// sweep in flight.
//
// The paper runs 5·10⁷ iterations per cell; the default here is smaller so
// the sweep finishes in minutes. Pass -iters 50000000 for paper scale.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"sops"
	"sops/internal/atomicio"
	"sops/internal/experiments"
	"sops/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "phase:", friendly(err))
		os.Exit(1)
	}
}

// friendly rewrites the library's named validation errors in terms of this
// command's flags, so a bad invocation says which flag to fix instead of
// echoing an internal error chain.
func friendly(err error) string {
	switch {
	case errors.Is(err, sops.ErrEmptySweep):
		return "-lambdas and -gammas must each supply at least one value"
	case errors.Is(err, sops.ErrNoSteps):
		return "-iters must be positive"
	case errors.Is(err, sops.ErrNoCounts):
		return "-n must be positive"
	case errors.Is(err, sops.ErrBadLayout):
		return "initial layout must be spiral or line"
	case errors.Is(err, sops.ErrSweepCheckpointMismatch):
		return err.Error() + " (the -checkpoint manifest was written by a different sweep; remove it or change -checkpoint)"
	}
	return err.Error()
}

func run() error {
	var (
		n        = flag.Int("n", 100, "total number of particles (two colors)")
		iters    = flag.Uint64("iters", 5_000_000, "iterations per grid cell")
		seed     = flag.Uint64("seed", 1, "random seed")
		lambdas  = flag.String("lambdas", "", "comma-separated λ values (default grid)")
		gammas   = flag.String("gammas", "", "comma-separated γ values (default grid)")
		workers  = flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 0, "cancel the sweep after this duration (0 = none)")
		progress = flag.Bool("progress", false, "report per-cell completion on stderr")
		output   = flag.String("o", "", "also write the diagram to this file (atomic replace)")
		ckpt     = flag.String("checkpoint", "", "record completed cells in this manifest (crash-safe sweeps)")
		ckptIter = flag.Uint64("checkpoint-steps", 0, "also checkpoint in-flight cells every this many steps (0 = off)")
		resume   = flag.Bool("resume", false, "resume from the -checkpoint manifest instead of starting over")
		retries  = flag.Int("retries", 0, "re-attempts granted to a failing cell")
		listen   = flag.String("listen", "", "serve live sweep progress, expvar and pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *resume && *ckpt == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}

	ls, gs := experiments.DefaultPhaseGrid()
	var err error
	if *lambdas != "" {
		if ls, err = parseFloats(*lambdas); err != nil {
			return fmt.Errorf("-lambdas: %w", err)
		}
	}
	if *gammas != "" {
		if gs, err = parseFloats(*gammas); err != nil {
			return fmt.Errorf("-gammas: %w", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	spec := sops.SweepSpec{
		Lambdas:         ls,
		Gammas:          gs,
		Seed:            *seed,
		Counts:          sops.Bichromatic(*n),
		Layout:          sops.LayoutLine,
		Steps:           *iters,
		Workers:         *workers,
		Retries:         *retries,
		CheckpointPath:  *ckpt,
		CheckpointSteps: *ckptIter,
	}
	if *progress {
		start := time.Now()
		spec.Observe = func(done, total int) {
			fmt.Fprintf(os.Stderr, "phase: %d/%d cells (%.1fs)\n", done, total, time.Since(start).Seconds())
		}
	}
	if *listen != "" {
		spec.Tracker = new(sops.SweepTracker)
		srv := telemetry.NewServer(telemetry.Sources{
			Sweep: spec.Tracker,
			Info: map[string]any{
				"workload": "phase diagram sweep",
				"n":        *n, "iters": *iters, "seed": *seed,
				"grid": fmt.Sprintf("%dx%d", len(ls), len(gs)),
			},
		})
		addr, err := srv.Start(*listen)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "phase: debug server on http://%s/debug/sops (also /debug/vars, /debug/pprof/)\n", addr)
	}

	fmt.Printf("phase diagram: n=%d iters=%d seed=%d\n\n", *n, *iters, *seed)
	sweep := sops.Sweep
	if *resume {
		sweep = sops.ResumeSweep
	}
	cells, err := sweep(ctx, spec)
	if ctxErr := ctx.Err(); ctxErr != nil {
		// Partial sweep: print what finished, then report the interruption.
		printCells(os.Stdout, cells, ls, gs)
		if *ckpt != "" {
			fmt.Fprintf(os.Stderr, "phase: completed cells are checkpointed; rerun with -resume to continue\n")
		}
		return fmt.Errorf("sweep interrupted (%v); results above are partial", ctxErr)
	}
	if err != nil {
		return err
	}
	printCells(os.Stdout, cells, ls, gs)
	if *output != "" {
		var b strings.Builder
		fmt.Fprintf(&b, "phase diagram: n=%d iters=%d seed=%d\n\n", *n, *iters, *seed)
		printCells(&b, cells, ls, gs)
		if err := atomicio.WriteFile(*output, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *output)
	}
	return nil
}

// printCells writes the per-cell table and the compact grid view for every
// completed cell; cancelled or failed cells are skipped.
func printCells(w io.Writer, cells []sops.CellResult, ls, gs []float64) {
	fmt.Fprintf(w, "%8s %8s %7s %7s %8s  %s\n", "lambda", "gamma", "alpha", "het", "segr", "phase")
	byKey := make(map[[2]float64]string, len(cells))
	for _, c := range cells {
		if c.Err != nil {
			continue
		}
		fmt.Fprintf(w, "%8.3g %8.3g %7.3f %7d %8.3f  %s\n",
			c.Lambda, c.Gamma, c.Snap.Alpha, c.Snap.HetEdges, c.Snap.Segregation, c.Snap.Phase)
		byKey[[2]float64{c.Lambda, c.Gamma}] = shortPhase(c.Snap.Phase.String())
	}

	// Compact grid view (rows: γ descending; columns: λ ascending).
	fmt.Fprintf(w, "\n%8s", "γ \\ λ")
	for _, l := range ls {
		fmt.Fprintf(w, " %6.3g", l)
	}
	fmt.Fprintln(w)
	for i := len(gs) - 1; i >= 0; i-- {
		fmt.Fprintf(w, "%8.3g", gs[i])
		for _, l := range ls {
			fmt.Fprintf(w, " %6s", byKey[[2]float64{l, gs[i]}])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nCS=compressed-separated CI=compressed-integrated ES=expanded-separated EI=expanded-integrated")
}

func shortPhase(name string) string {
	switch name {
	case "compressed-separated":
		return "CS"
	case "compressed-integrated":
		return "CI"
	case "expanded-separated":
		return "ES"
	case "expanded-integrated":
		return "EI"
	}
	return "?"
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
