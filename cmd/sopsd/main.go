// Command sopsd is the simulation-as-a-service daemon: a long-running
// process that accepts separation-chain run and sweep jobs over HTTP,
// executes them under per-tenant concurrency quotas with fair round-robin
// scheduling, and persists every job durably enough that kill -9 loses
// nothing — interrupted jobs resume from their checkpoints on restart and
// finish byte-identical to an uninterrupted execution.
//
// The daemon is self-healing: every durable artifact travels in a
// checksummed integrity envelope, a job whose documents fail verification
// is quarantined (not fatal), failed executions retry with exponential
// backoff before landing in a terminal state, a stuck-job watchdog kills
// and requeues jobs whose progress heartbeat goes flat, and queue-depth
// backpressure sheds submissions with 503 + Retry-After instead of
// accepting unbounded work. The /debug/sops status report carries the
// corruption and self-healing counters.
//
// API (see the README's Serving section for a curl walkthrough):
//
//	POST   /v1/jobs             submit a run or sweep spec (JSON)
//	GET    /v1/jobs             list jobs (?tenant= filters)
//	GET    /v1/jobs/{id}        status, live metrics, trace tail, result
//	GET    /v1/jobs/{id}/events live status stream (Server-Sent Events)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /debug/sops          daemon status; /debug/vars, /debug/pprof/
//
// Usage:
//
//	sopsd -dir /var/lib/sopsd [-listen :8724] [-workers 8] [-tenant-slots 2]
//
// SIGINT/SIGTERM drain gracefully: running jobs are suspended into their
// checkpoints and the store is left ready for the next start.
//
// The SOPS_FAILFS environment variable, when set, installs the
// deterministic disk-fault injection layer (internal/failfs) under every
// artifact write — chaos-testing hook only, never set it in production.
// Its format is documented at failfs.ParseEnv.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sops"
	"sops/internal/failfs"
	"sops/internal/jobs"
	"sops/internal/telemetry"
)

func main() {
	var (
		listen          = flag.String("listen", "localhost:8724", "HTTP listen address")
		dir             = flag.String("dir", "", "job store directory (required)")
		workers         = flag.Int("workers", 0, "max jobs executing concurrently (0 = default 4)")
		tenantSlots     = flag.Int("tenant-slots", 0, "max concurrent jobs per tenant (0 = workers)")
		checkpointEvery = flag.Uint64("checkpoint-every", 0, "run-job checkpoint cadence in steps (0 = default 100000)")
		sweepCkptSteps  = flag.Uint64("sweep-checkpoint-steps", 0, "in-flight sweep-cell checkpoint cadence (0 = checkpoint-every)")
		traceCap        = flag.Int("trace-cap", 0, "live trace samples retained per run job (0 = default 256)")
		maxRetries      = flag.Int("max-retries", 0, "retries before a failing job goes terminal (0 = default 2, negative = none)")
		retryBackoff    = flag.Duration("retry-backoff", 0, "delay before a failed job's first retry, doubling per attempt (0 = default 1s)")
		requeueLimit    = flag.Int("requeue-limit", 0, "crash requeues before a job is poisoned (0 = default 3, negative = unbounded)")
		queueHighWater  = flag.Int("queue-high-water", 4096, "queued jobs accepted before submissions get 503 (<= 0 = unbounded)")
		stuckAfter      = flag.Duration("stuck-after", 10*time.Minute, "kill running jobs with no progress for this long (0 = no watchdog)")
	)
	flag.Parse()
	log.SetPrefix("sopsd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "sopsd: -dir is required: the job store directory makes submissions durable across restarts")
		flag.Usage()
		os.Exit(2)
	}

	// Chaos hook: a seeded fault-injection filesystem under every durable
	// write, for crash drills (scripts/sopsd_chaos.sh). No-op when unset.
	if spec := os.Getenv("SOPS_FAILFS"); spec != "" {
		inj, err := failfs.ParseEnv(spec)
		if err != nil {
			log.Fatalf("SOPS_FAILFS: %v", err)
		}
		if inj != nil {
			failfs.Swap(inj)
			log.Printf("SOPS_FAILFS active: injecting disk faults (%s)", spec)
		}
	}

	m, err := jobs.Open(jobs.Config{
		Dir:                  *dir,
		Workers:              *workers,
		TenantSlots:          *tenantSlots,
		CheckpointEvery:      *checkpointEvery,
		SweepCheckpointSteps: *sweepCkptSteps,
		TraceCapacity:        *traceCap,
		MaxRetries:           *maxRetries,
		RetryBackoff:         *retryBackoff,
		RequeueLimit:         *requeueLimit,
		QueueHighWater:       *queueHighWater,
		StuckAfter:           *stuckAfter,
		Logf:                 log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	models := make([]string, 0, 4)
	for _, mi := range sops.Models() {
		models = append(models, mi.Name)
	}
	log.Printf("models registered: %s", strings.Join(models, ", "))

	debug := telemetry.NewServer(telemetry.Sources{
		Health: m.Health(),
		Info: map[string]any{
			"service": "sopsd",
			"dir":     *dir,
			"models":  models,
		},
	})
	mux := http.NewServeMux()
	mux.Handle("/v1/", jobs.NewServer(m).Handler())
	mux.Handle("/debug/", debug.Handler())

	// Read-side timeouts bound slow-loris clients; WriteTimeout stays
	// unset because the SSE event streams write for as long as a client
	// watches.
	srv := &http.Server{
		Addr:              *listen,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s (store %s)", *listen, *dir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		// Stop accepting work, then suspend every running job into its
		// checkpoints; the next sopsd over the same -dir resumes them.
		log.Printf("%s: suspending jobs and draining", sig)
		srv.Close()
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
	case err := <-errc:
		log.Printf("serve: %v", err)
	}
	m.Close()
	log.Print("drained; job store is ready for restart")
}
