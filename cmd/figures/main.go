// Command figures regenerates every figure and table of the paper into an
// output directory: Figure 2 (time evolution, ASCII + SVG + metric series),
// Figure 3 (phase diagram), the Lemma 2 perimeter table, the swap-move
// ablation, and the theorem-regime frequency tables (compression and
// fixed-shape separation/integration).
//
// By default workloads are scaled down to finish in a few minutes; pass
// -full for the paper-scale iteration counts (tens of minutes).
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"sops"
	"sops/internal/atomicio"
	"sops/internal/core"
	"sops/internal/enumerate"
	"sops/internal/experiments"
	"sops/internal/ising"
	"sops/internal/lattice"
	"sops/internal/metrics"
	"sops/internal/polymer"
	"sops/internal/psys"
	"sops/internal/runner"
	"sops/internal/schelling"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		outDir  = flag.String("out", "out", "output directory")
		full    = flag.Bool("full", false, "paper-scale workloads (much slower)")
		seed    = flag.Uint64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	// Ctrl-C cancels the in-flight sweep promptly instead of waiting for
	// the current figure to finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	scale := uint64(10) // scaled-down divisor
	if *full {
		scale = 1
	}

	if err := figure2(*outDir, scale, *seed); err != nil {
		return fmt.Errorf("figure 2: %w", err)
	}
	if err := figure3(ctx, *outDir, scale, *seed, *workers); err != nil {
		return fmt.Errorf("figure 3: %w", err)
	}
	if err := lemma2(*outDir); err != nil {
		return fmt.Errorf("lemma 2: %w", err)
	}
	if err := ablation(*outDir, scale, *seed); err != nil {
		return fmt.Errorf("ablation: %w", err)
	}
	if err := theoremTables(ctx, *outDir, scale, *seed, *workers); err != nil {
		return fmt.Errorf("theorem tables: %w", err)
	}
	if err := analysis(*outDir); err != nil {
		return fmt.Errorf("analysis: %w", err)
	}
	if err := schellingBaseline(*outDir, *seed); err != nil {
		return fmt.Errorf("schelling baseline: %w", err)
	}
	fmt.Println("all figures regenerated into", *outDir)
	return nil
}

func figure2(outDir string, scale, seed uint64) error {
	fmt.Println("figure 2: time evolution (λ=4, γ=4, n=100)...")
	checkpoints := make([]uint64, len(experiments.Figure2Checkpoints))
	for i, cp := range experiments.Figure2Checkpoints {
		checkpoints[i] = cp / scale
	}
	points, err := experiments.Figure2(100, 4, 4, checkpoints, seed)
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: n=100, λ=4, γ=4, checkpoints scaled by 1/%d\n\n", scale)
	fmt.Fprintf(&b, "%12s %6s %7s %5s %8s %8s  %s\n", "steps", "perim", "alpha", "het", "segr", "cluster", "phase")
	for _, p := range points {
		fmt.Fprintf(&b, "%12d %6d %7.3f %5d %8.3f %8.3f  %s\n",
			p.Steps, p.Snap.Perimeter, p.Snap.Alpha, p.Snap.HetEdges,
			p.Snap.Segregation, p.Snap.LargestFrac, p.Snap.Phase)
	}
	b.WriteString("\n")
	for _, p := range points {
		fmt.Fprintf(&b, "--- after %d iterations ---\n%s\n", p.Steps, p.ASCII)
	}
	if err := atomicio.WriteFile(filepath.Join(outDir, "figure2.txt"), []byte(b.String()), 0o644); err != nil {
		return err
	}
	// Re-run to emit SVG snapshots (cheap at scaled checkpoints). The same
	// pass records the checkpoint states into a machine-readable trace: each
	// segment samples once at its end (SampleEvery 0), so the recorder holds
	// exactly the figure's time series.
	sys, err := sops.New(sops.Options{
		Counts: []int{50, 50}, Layout: sops.LayoutLine,
		Lambda: 4, Gamma: 4, Seed: seed,
	})
	if err != nil {
		return err
	}
	rec := sops.NewRecorder(len(checkpoints), 0)
	var done uint64
	for i, cp := range checkpoints {
		if _, err := sys.Run(context.Background(), sops.RunSpec{
			Steps:     cp - done,
			Telemetry: &sops.Telemetry{Recorder: rec},
		}); err != nil {
			return err
		}
		done = cp
		f, err := atomicio.Create(filepath.Join(outDir, fmt.Sprintf("figure2_%d.svg", i)))
		if err != nil {
			return err
		}
		if err := sys.RenderSVG(f); err != nil {
			f.Abort()
			return err
		}
		if err := f.Commit(); err != nil {
			return err
		}
	}
	// The trace ships in both the CSV interchange form and the packed
	// binary form (E27 compares their sizes; sops -convert maps between
	// them).
	if err := rec.WriteFile(filepath.Join(outDir, "figure2_trace.csv")); err != nil {
		return err
	}
	return rec.WriteFile(filepath.Join(outDir, "figure2_trace.sbt"))
}

func figure3(ctx context.Context, outDir string, scale, seed uint64, workers int) error {
	fmt.Println("figure 3: phase diagram...")
	ls, gs := experiments.DefaultPhaseGrid()
	cells, err := experiments.Figure3Context(ctx, 100, ls, gs, 50_000_000/scale, seed, workers)
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: n=100, %d iterations per cell\n\n", 50_000_000/scale)
	fmt.Fprintf(&b, "%8s %8s %7s %7s %8s  %s\n", "lambda", "gamma", "alpha", "het", "segr", "phase")
	for _, c := range cells {
		fmt.Fprintf(&b, "%8.3g %8.3g %7.3f %7d %8.3f  %s\n",
			c.Lambda, c.Gamma, c.Snap.Alpha, c.Snap.HetEdges, c.Snap.Segregation, c.Snap.Phase)
	}
	return atomicio.WriteFile(filepath.Join(outDir, "figure3.txt"), []byte(b.String()), 0o644)
}

func lemma2(outDir string) error {
	fmt.Println("lemma 2: minimum-perimeter table...")
	rows := experiments.Lemma2Table([]int{1, 2, 3, 7, 19, 37, 61, 100, 169, 271, 397, 547, 1000, 2000, 4000})
	var b strings.Builder
	b.WriteString("Lemma 2: p_min(n) vs the bound 2·sqrt(3)·sqrt(n)\n\n")
	fmt.Fprintf(&b, "%8s %8s %10s\n", "n", "p_min", "bound")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %8d %10.2f\n", r.N, r.PMin, r.Bound)
	}
	return atomicio.WriteFile(filepath.Join(outDir, "lemma2.txt"), []byte(b.String()), 0o644)
}

func ablation(outDir string, scale, seed uint64) error {
	fmt.Println("swap-move ablation...")
	res, err := experiments.SwapAblation(100, 4, 4, 0.6, 60_000_000/scale, 50_000, seed)
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Swap ablation: n=100, λ=4, γ=4, segregation target %.2f, budget %d\n\n", res.Target, res.BudgetPerCase)
	fmt.Fprintf(&b, "with swaps:    reached at %d iterations\n", res.WithSwaps)
	if res.WithoutSwaps == 0 {
		fmt.Fprintf(&b, "without swaps: not reached within budget\n")
	} else {
		fmt.Fprintf(&b, "without swaps: reached at %d iterations (%.1fx slower)\n",
			res.WithoutSwaps, float64(res.WithoutSwaps)/float64(res.WithSwaps))
	}
	return atomicio.WriteFile(filepath.Join(outDir, "ablation.txt"), []byte(b.String()), 0o644)
}

func theoremTables(ctx context.Context, outDir string, scale, seed uint64, workers int) error {
	fmt.Println("theorem-regime tables...")
	var b strings.Builder

	// Each point list is an independent sweep: shard it across the engine's
	// workers and print in input order, identical to the serial output.
	b.WriteString("Theorem 13 / 15 regimes: Pr[3-compressed] at quasi-stationarity, n=60\n\n")
	fmt.Fprintf(&b, "%8s %8s %8s %18s\n", "lambda", "gamma", "freq", "95% CI")
	type lg struct{ l, g float64 }
	points, err := runner.Sweep(ctx, []lg{{4, 6}, {2, 6}, {4, 1.02}, {6, 1.02}, {1, 1}},
		runner.Options{Workers: workers, Seed: seed},
		func(ctx context.Context, p lg, _ uint64) (experiments.FrequencyResult, error) {
			return experiments.CompressionFrequencyContext(ctx, 60, p.l, p.g, 3, 4_000_000/scale, 10_000, 50, seed)
		})
	if err != nil {
		return err
	}
	for _, r := range points {
		res := r.Value
		fmt.Fprintf(&b, "%8.3g %8.3g %8.2f [%6.2f, %6.2f]\n", res.Lambda, res.Gamma, res.Freq, res.Lo, res.Hi)
	}

	b.WriteString("\nPODC'16 compression baseline (monochromatic, γ=1): Pr[3-compressed], n=60\n\n")
	fmt.Fprintf(&b, "%8s %8s %18s\n", "lambda", "freq", "95% CI")
	mono, err := runner.Sweep(ctx, []float64{2, 4, 6, 8},
		runner.Options{Workers: workers, Seed: seed},
		func(ctx context.Context, l float64, _ uint64) (experiments.FrequencyResult, error) {
			return experiments.MonochromaticCompressionFrequencyContext(ctx, 60, l, 3, 4_000_000/scale, 10_000, 50, seed)
		})
	if err != nil {
		return err
	}
	for _, r := range mono {
		fmt.Fprintf(&b, "%8.3g %8.2f [%6.2f, %6.2f]\n", r.Value.Lambda, r.Value.Freq, r.Value.Lo, r.Value.Hi)
	}

	b.WriteString("\nTheorem 14 / 16 regimes: Pr[(4,0.25)-separated] under π_P on a fixed hexagon (r=3, n=37)\n\n")
	fmt.Fprintf(&b, "%8s %8s %18s\n", "gamma", "freq", "95% CI")
	hex, err := runner.Sweep(ctx, []float64{81.0 / 79.0, 1.5, 2, 3, 4, 6},
		runner.Options{Workers: workers, Seed: seed},
		func(ctx context.Context, g float64, _ uint64) (experiments.FrequencyResult, error) {
			return experiments.FixedShapeSeparationContext(ctx, 3, g, 4, 0.25, 4_000_000/scale, 20_000, 40, seed)
		})
	if err != nil {
		return err
	}
	for _, r := range hex {
		fmt.Fprintf(&b, "%8.4g %8.2f [%6.2f, %6.2f]\n", r.Value.Gamma, r.Value.Freq, r.Value.Lo, r.Value.Hi)
	}

	b.WriteString("\nMulti-color extension (§5): k colors, 15 particles each, λ=γ=4\n\n")
	fmt.Fprintf(&b, "%4s %8s %12s\n", "k", "segr", "meanCluster")
	for _, k := range []int{2, 3, 4} {
		res, err := experiments.MultiColor(k, 15, 4, 4, 30_000_000/scale, seed)
		if err != nil {
			return err
		}
		mean := 0.0
		for _, f := range res.ClusterFrac {
			mean += f
		}
		mean /= float64(k)
		fmt.Fprintf(&b, "%4d %8.3f %12.3f\n", k, res.Snap.Segregation, mean)
	}

	return atomicio.WriteFile(filepath.Join(outDir, "theorems.txt"), []byte(b.String()), 0o644)
}

// analysis writes the theory-machinery artifacts: the Lemma 1 perimeter
// census, exact spectral gaps versus γ, the Kotecký–Preiss condition, the
// Theorem 11 volume/surface bracket, and the high-temperature identity.
func analysis(outDir string) error {
	fmt.Println("analysis: census, spectral gaps, cluster expansion...")
	var b strings.Builder

	b.WriteString("Lemma 1 perimeter census: connected hole-free shapes of n particles by perimeter\n")
	b.WriteString("(count^(1/perimeter) stays below 2+sqrt(2) ≈ 3.414)\n\n")
	for _, n := range []int{4, 5, 6, 7} {
		fmt.Fprintf(&b, "n=%d:\n%8s %8s %8s\n", n, "perim", "count", "root")
		for _, r := range enumerate.CensusTable(n) {
			fmt.Fprintf(&b, "%8d %8d %8.3f\n", r.Perimeter, r.Count, r.Root)
		}
		b.WriteString("\n")
	}

	b.WriteString("Spectral gap of M (exact, 264-state bichromatic 4-particle space) vs γ at λ=2:\n")
	b.WriteString("(the gap shrinks as γ grows: slower mixing, §5)\n\n")
	fmt.Fprintf(&b, "%8s %12s %14s %12s\n", "gamma", "gap", "relaxation", "t_mix(1/4)")
	configs, err := enumerate.Configs([]int{2, 2}, false)
	if err != nil {
		return err
	}
	for _, gamma := range []float64{1, 2, 4, 8, 16} {
		m, err := enumerate.TransitionMatrix(configs, 2, gamma, true)
		if err != nil {
			return err
		}
		gap, err := m.SpectralGap(2, gamma)
		if err != nil {
			return err
		}
		tmix, mixed := m.MixingTime(2, gamma, 0.25, 1_000_000)
		mark := ""
		if !mixed {
			mark = "+"
		}
		fmt.Fprintf(&b, "%8.3g %12.6f %14.1f %11d%s\n", gamma, gap, 1/gap, tmix, mark)
	}

	b.WriteString("\nKotecký–Preiss condition (Theorem 11, Eq. 3), per-edge totals vs c:\n\n")
	fmt.Fprintf(&b, "%-28s %10s %10s %10s %10s  %s\n", "model", "c", "head", "tail", "total", "holds")
	type kpCase struct {
		name string
		m    polymer.Model
		c    float64
	}
	for _, tc := range []kpCase{
		{"loops γ=8 (maxLen 8)", polymer.LoopModel(8, 8), 0.05},
		{"loops γ=5.66 (maxLen 8)", polymer.LoopModel(5.66, 8), 0.05},
		{"loops γ=4 (maxLen 6)", polymer.LoopModel(4, 6), 0.05},
		{"even γ=81/79 (maxLen 6)", polymer.EvenModel(81.0/79.0, 6), 0.01},
		{"even γ=79/81 (maxLen 6)", polymer.EvenModel(79.0/81.0, 6), 0.01},
		{"even γ=3 (maxLen 6)", polymer.EvenModel(3, 6), 0.01},
	} {
		rep := polymer.CheckKP(tc.m, tc.c)
		fmt.Fprintf(&b, "%-28s %10.3g %10.4g %10.4g %10.4g  %v\n",
			tc.name, rep.C, rep.Head, rep.Tail, rep.Total, rep.Satisfied)
	}

	b.WriteString("\nTheorem 11 volume/surface bracket on hexagonal regions (loops, γ=8, c=0.05):\n\n")
	lm := polymer.LoopModel(8, 4)
	psi := polymer.PsiPerEdge(lm, 3)
	fmt.Fprintf(&b, "ψ = %.6f\n", psi)
	fmt.Fprintf(&b, "%4s %6s %6s %12s %12s %12s\n", "r", "|Λ|", "|∂Λ|", "lower", "ln Ξ", "upper")
	for r := 1; r <= 2; r++ {
		region := polymer.HexRegion(r)
		pool := lm.Enumerate(region)
		logXi := polymer.LogXiExact(lm, pool)
		vol := psi * float64(len(region))
		surf := 0.05 * float64(len(region.SurfaceEdges()))
		fmt.Fprintf(&b, "%4d %6d %6d %12.6f %12.6f %12.6f\n",
			r, len(region), len(region.SurfaceEdges()), vol-surf, logXi, vol+surf)
	}

	b.WriteString("\nHigh-temperature expansion identity on the 7-vertex hexagon (relative errors):\n\n")
	shape := psys.New()
	for _, p := range lattice.Hexagon(lattice.Point{}, 1) {
		if err := shape.Place(p, 0); err != nil {
			return err
		}
	}
	fmt.Fprintf(&b, "%10s %18s %18s %12s\n", "gamma", "brute force", "HT expansion", "rel err")
	for _, gamma := range []float64{79.0 / 81.0, 81.0 / 79.0, 2, 5.66} {
		brute, err := ising.PartitionBrute(shape, gamma)
		if err != nil {
			return err
		}
		ht, err := ising.PartitionHT(shape, gamma)
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "%10.4g %18.8g %18.8g %12.2e\n", gamma, brute, ht, math.Abs(brute-ht)/brute)
	}

	return atomicio.WriteFile(filepath.Join(outDir, "analysis.txt"), []byte(b.String()), 0o644)
}

// schellingBaseline writes the related-work baseline comparison: Schelling
// segregation versus the particle-system chain on comparable workloads.
func schellingBaseline(outDir string, seed uint64) error {
	fmt.Println("schelling baseline...")
	var b strings.Builder
	b.WriteString("Schelling baseline (radius-6 hexagon, 40+40 agents) vs particle system (n=80, λ=4):\n\n")
	fmt.Fprintf(&b, "%-34s %10s %10s\n", "model", "segr", "happy")
	for _, tol := range []float64{0.34, 0.5, 0.67} {
		m, err := schelling.New(6, []int{40, 40}, tol, seed)
		if err != nil {
			return err
		}
		m.Run(500_000)
		cfg, err := m.Config()
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "schelling tolerance %.2f            %10.3f %10.3f\n",
			tol, metrics.SegregationIndex(cfg), m.HappyFraction())
	}
	for _, gamma := range []float64{1.05, 4} {
		cfg, err := core.Initial(core.LayoutSpiral, core.Bichromatic(80), seed)
		if err != nil {
			return err
		}
		ch, err := core.New(cfg, core.Params{Lambda: 4, Gamma: gamma, Seed: seed})
		if err != nil {
			return err
		}
		ch.Run(3_000_000)
		fmt.Fprintf(&b, "particle system γ=%-4.3g             %10.3f %10s\n",
			gamma, metrics.SegregationIndex(ch.Config()), "n/a")
	}
	b.WriteString("\nSchelling relocates unhappy agents to random vacancies (shape not preserved);\n")
	b.WriteString("the particle system separates under strictly local moves while staying connected.\n")
	return atomicio.WriteFile(filepath.Join(outDir, "schelling.txt"), []byte(b.String()), 0o644)
}
