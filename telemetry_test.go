package sops

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
)

// TestRunProbeMatchesStats attaches a probe through RunSpec while readers
// poll it concurrently (the -race lane's data-race proof); once Run
// returns, the probe's totals must equal the chain's own statistics
// exactly — the engines flush their final partial batch on exit.
func TestRunProbeMatchesStats(t *testing.T) {
	sys, err := New(Options{Counts: []int{10, 10}, Lambda: 4, Gamma: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	probe := NewProbe()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c := probe.Counters()
				if c.Accepted() > c.Steps {
					t.Error("accepted exceeds steps")
					return
				}
				probe.Status()
			}
		}()
	}
	done, err := sys.Run(context.Background(), RunSpec{
		Steps:     100_000,
		Telemetry: &Telemetry{Probe: probe},
	})
	close(stop)
	wg.Wait()
	if err != nil || done != 100_000 {
		t.Fatalf("run: done=%d err=%v", done, err)
	}
	st := sys.Stats()
	want := ProbeCounters{Steps: st.Steps, Moves: st.Moves, Swaps: st.Swaps, Rejected: st.Rejected}
	if c := probe.Counters(); c != want {
		t.Fatalf("probe totals %+v != chain stats %+v", c, want)
	}
	// The probe stays attached: further bare steps keep feeding it after
	// the next flushed batch or run.
	if _, err := sys.Run(context.Background(), RunSpec{Steps: 1_000}); err != nil {
		t.Fatal(err)
	}
	if c := probe.Counters(); c.Steps != 101_000 {
		t.Fatalf("probe after second run: %d steps, want 101000", c.Steps)
	}
}

// TestRunRecorderSamples runs with a sampling cadence and checks the
// recorder holds the trajectory at exactly the absolute step boundaries.
func TestRunRecorderSamples(t *testing.T) {
	sys, err := New(Options{Counts: []int{8, 8}, Lambda: 4, Gamma: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(64, 0)
	if _, err := sys.Run(context.Background(), RunSpec{
		Steps:       50_000,
		SampleEvery: 10_000,
		Telemetry:   &Telemetry{Recorder: rec},
	}); err != nil {
		t.Fatal(err)
	}
	samples := rec.Samples()
	if len(samples) != 5 {
		t.Fatalf("got %d samples, want 5", len(samples))
	}
	for i, s := range samples {
		if want := uint64(10_000 * (i + 1)); s.Snap.Steps != want {
			t.Fatalf("sample %d at step %d, want %d", i, s.Snap.Steps, want)
		}
		if s.Energy == 0 {
			t.Fatalf("sample %d has zero energy", i)
		}
	}
	if got, want := samples[4].Energy, sys.Energy(); got != want {
		t.Fatalf("final sample energy %v != System.Energy %v", got, want)
	}
}

// TestTraceIdenticalAcrossResume is the crash-safety contract for traces:
// one recorder following a run interrupted at an off-cadence step and
// resumed from its checkpoint must flush byte-identical CSV and JSONL
// traces to an uninterrupted run's. Absolute-step sample alignment plus
// the recorder's own cadence filter make the boundary invisible.
func TestTraceIdenticalAcrossResume(t *testing.T) {
	opts := Options{Counts: []int{10, 10}, Lambda: 4, Gamma: 4, Seed: 21}
	const total, every = 60_000, uint64(10_000)
	spec := func(steps uint64, rec *Recorder) RunSpec {
		return RunSpec{Steps: steps, SampleEvery: every, Telemetry: &Telemetry{Recorder: rec}}
	}

	uninterrupted, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	full := NewRecorder(64, every)
	if _, err := uninterrupted.Run(context.Background(), spec(total, full)); err != nil {
		t.Fatal(err)
	}

	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	split := NewRecorder(64, every)
	// Interrupt at 25k — mid-interval, so the run's final sample at 25k is
	// off-cadence and the recorder's filter drops it.
	if _, err := sys.Run(context.Background(), spec(25_000, split)); err != nil {
		t.Fatal(err)
	}
	blob, err := sys.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(blob, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Run(context.Background(), spec(total-restored.Steps(), split)); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(split.EncodeCSV(), full.EncodeCSV()) {
		t.Fatalf("CSV traces differ across resume:\n--- resumed ---\n%s--- uninterrupted ---\n%s",
			split.EncodeCSV(), full.EncodeCSV())
	}
	a, err := split.EncodeJSONL()
	if err != nil {
		t.Fatal(err)
	}
	b, err := full.EncodeJSONL()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("JSONL traces differ across resume")
	}
}

// TestRunFinalObserveOnCancel is the regression test for the cancellation
// sampling gap: a run cut short mid-interval must still invoke the
// observer once with the state it stopped in, instead of returning with
// the last interval's worth of trajectory unobserved.
func TestRunFinalObserveOnCancel(t *testing.T) {
	sys, err := New(Options{Counts: []int{8, 8}, Lambda: 4, Gamma: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	var observed []uint64
	done, err := sys.Run(cancelled, RunSpec{Steps: 1_000, SampleEvery: 100, Observer: func(m Snapshot) bool {
		observed = append(observed, m.Steps)
		return true
	}})
	if done != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: done=%d err=%v", done, err)
	}
	if len(observed) != 1 || observed[0] != 0 {
		t.Fatalf("observer calls %v, want exactly one with the final state", observed)
	}

	// Same through the consolidated entry point, and the recorder gets the
	// final state too (Offer-filtered, Record-free path).
	rec := NewRecorder(8, 0)
	_, err = sys.Run(cancelled, RunSpec{Steps: 1_000, SampleEvery: 100, Telemetry: &Telemetry{Recorder: rec}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if rec.Len() != 1 {
		t.Fatalf("recorder got %d samples on cancelled run, want 1", rec.Len())
	}
}

func TestBadLayoutRejected(t *testing.T) {
	opts := Options{Counts: []int{5, 5}, Lambda: 4, Gamma: 4, Layout: Layout(99)}
	if err := opts.Validate(); !errors.Is(err, ErrBadLayout) {
		t.Fatalf("Validate: %v, want ErrBadLayout", err)
	}
	if _, err := New(opts); !errors.Is(err, ErrBadLayout) {
		t.Fatalf("New: %v, want ErrBadLayout", err)
	}
	if _, err := NewDistributed(opts); !errors.Is(err, ErrBadLayout) {
		t.Fatalf("NewDistributed: %v, want ErrBadLayout", err)
	}
	for _, ok := range []Layout{0, LayoutSpiral, LayoutLine} {
		opts.Layout = ok
		if err := opts.Validate(); err != nil {
			t.Fatalf("Layout %d rejected: %v", ok, err)
		}
	}
}

func TestSweepSpecValidate(t *testing.T) {
	valid := SweepSpec{
		Lambdas: []float64{4}, Gammas: []float64{4},
		Counts: []int{5, 5}, Steps: 100,
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*SweepSpec)
		want   error
	}{
		{"no lambdas", func(s *SweepSpec) { s.Lambdas = nil }, ErrEmptySweep},
		{"no gammas", func(s *SweepSpec) { s.Gammas = nil }, ErrEmptySweep},
		{"no steps", func(s *SweepSpec) { s.Steps = 0 }, ErrNoSteps},
		{"no counts", func(s *SweepSpec) { s.Counts = nil }, ErrNoCounts},
		{"negative count", func(s *SweepSpec) { s.Counts = []int{3, -1} }, ErrNoCounts},
		{"bad layout", func(s *SweepSpec) { s.Layout = Layout(7) }, ErrBadLayout},
	}
	for _, tc := range cases {
		spec := valid
		tc.mutate(&spec)
		if err := spec.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: Validate() = %v, want %v", tc.name, err, tc.want)
		}
		if _, err := Sweep(context.Background(), spec); !errors.Is(err, tc.want) {
			t.Errorf("%s: Sweep() = %v, want %v", tc.name, err, tc.want)
		}
	}
	// Per-axis bias values are deliberately per-cell failures, not
	// Validate errors: the rest of the grid must still run.
	spec := valid
	spec.Lambdas = []float64{4, -1}
	if err := spec.Validate(); err != nil {
		t.Fatalf("axis value rejected by Validate: %v", err)
	}
}

// TestSweepProgress drives a small sweep with both a caller-held Tracker
// and the Progress callback, and checks the aggregate view converges to
// done == total with the failure counted.
func TestSweepProgress(t *testing.T) {
	tracker := new(SweepTracker)
	var mu sync.Mutex
	var last SweepProgress
	calls := 0
	_, err := Sweep(context.Background(), SweepSpec{
		Lambdas: []float64{4, -1}, // -1: that column's cell fails
		Gammas:  []float64{4},
		Counts:  []int{5, 5},
		Steps:   500,
		Workers: 2,
		Tracker: tracker,
		Progress: func(p SweepProgress) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			last = p
		},
	})
	var sweepErr *SweepError
	if !errors.As(err, &sweepErr) {
		t.Fatalf("expected SweepError, got %v", err)
	}
	if calls != 2 {
		t.Fatalf("Progress called %d times, want 2", calls)
	}
	if last.Done != 2 || last.Total != 2 || last.Running != 0 {
		t.Fatalf("final progress %+v", last)
	}
	p := tracker.Progress()
	if p.Done != 2 || p.Failed != 1 {
		t.Fatalf("tracker progress %+v", p)
	}
}

// TestDistributedProbe runs the amoebot runtime with a probe attached: the
// published totals must match the scheduler's own accounting exactly once
// the run returns, for both the sequential and concurrent schedulers.
func TestDistributedProbe(t *testing.T) {
	for _, workers := range []int{1, 4} {
		d, err := NewDistributed(Options{Counts: []int{15, 15}, Lambda: 4, Gamma: 4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		probe := NewProbe()
		d.SetProbe(probe)
		performed, moves, swaps, err := d.RunContext(context.Background(), 60_000, workers)
		if err != nil {
			t.Fatal(err)
		}
		want := ProbeCounters{Steps: performed, Moves: moves, Swaps: swaps, Rejected: performed - moves - swaps}
		if c := probe.Counters(); c != want {
			t.Fatalf("workers=%d: probe %+v != scheduler %+v", workers, c, want)
		}
		if e := d.Energy(); e >= 0 {
			t.Fatalf("workers=%d: energy %v, want negative under λ,γ>1", workers, e)
		}
	}
}
