package sops

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// This file defines the wire forms of Options and SweepSpec: stable JSON
// codecs front-ends (cmd/sopsd's job API, config files) use to submit work
// without linking against Go. The wire schema carries only the fields that
// determine what is computed — callbacks, trackers and server-side
// checkpoint configuration are runtime wiring and are deliberately not part
// of the contract: Marshal omits them and Unmarshal leaves them zero.
//
// Decoding is strict (unknown fields are rejected), so a typo in a
// submitted spec fails loudly instead of silently running the default.
// Validation stays separate: decode, then call Validate, so API servers can
// distinguish malformed JSON (400, undecodable) from an invalid spec (400,
// named sops.Err* error).

// optionsJSON is the wire schema of Options. Layout travels by name
// ("spiral", "line") via core.Layout's text codec.
type optionsJSON struct {
	Counts       []int              `json:"counts"`
	Layout       Layout             `json:"layout,omitempty"`
	Separated    bool               `json:"separated,omitempty"`
	Lambda       float64            `json:"lambda"`
	Gamma        float64            `json:"gamma"`
	Model        string             `json:"model,omitempty"`
	Couplings    map[string]float64 `json:"couplings,omitempty"`
	DisableSwaps bool               `json:"disableSwaps,omitempty"`
	Seed         uint64             `json:"seed,omitempty"`
	Thresholds   *Thresholds        `json:"thresholds,omitempty"`
}

// MarshalJSON encodes the options in their wire form.
func (o Options) MarshalJSON() ([]byte, error) {
	return json.Marshal(optionsJSON{
		Counts:       o.Counts,
		Layout:       o.Layout,
		Separated:    o.Separated,
		Lambda:       o.Lambda,
		Gamma:        o.Gamma,
		Model:        o.Model,
		Couplings:    o.Couplings,
		DisableSwaps: o.DisableSwaps,
		Seed:         o.Seed,
		Thresholds:   o.Thresholds,
	})
}

// UnmarshalJSON decodes the wire form, rejecting unknown fields. The result
// is not validated; call Validate before building a System from it.
func (o *Options) UnmarshalJSON(data []byte) error {
	var w optionsJSON
	if err := decodeStrict(data, &w); err != nil {
		return fmt.Errorf("sops: decode options: %w", err)
	}
	*o = Options{
		Counts:       w.Counts,
		Layout:       w.Layout,
		Separated:    w.Separated,
		Lambda:       w.Lambda,
		Gamma:        w.Gamma,
		Model:        w.Model,
		Couplings:    w.Couplings,
		DisableSwaps: w.DisableSwaps,
		Seed:         w.Seed,
		Thresholds:   w.Thresholds,
	}
	return nil
}

// sweepSpecJSON is the wire schema of SweepSpec: the deterministic grid
// plus the execution knobs that affect results or effort. Backoff travels
// as integer milliseconds.
type sweepSpecJSON struct {
	Lambdas      []float64            `json:"lambdas,omitempty"`
	Gammas       []float64            `json:"gammas,omitempty"`
	Seeds        []uint64             `json:"seeds,omitempty"`
	Seed         uint64               `json:"seed,omitempty"`
	Counts       []int                `json:"counts"`
	Layout       Layout               `json:"layout,omitempty"`
	Separated    bool                 `json:"separated,omitempty"`
	DisableSwaps bool                 `json:"disableSwaps,omitempty"`
	Model        string               `json:"model,omitempty"`
	Couplings    map[string]float64   `json:"couplings,omitempty"`
	CouplingAxes map[string][]float64 `json:"couplingAxes,omitempty"`
	Steps        uint64               `json:"steps"`
	Workers      int                  `json:"workers,omitempty"`
	Thresholds   *Thresholds          `json:"thresholds,omitempty"`
	Retries      int                  `json:"retries,omitempty"`
	BackoffMS    int64                `json:"backoffMillis,omitempty"`
}

// MarshalJSON encodes the spec's wire form. Runtime-only fields (Observe,
// Progress, Tracker, the Checkpoint* configuration) are omitted — they
// belong to whoever executes the spec, not to the spec itself.
func (spec SweepSpec) MarshalJSON() ([]byte, error) {
	return json.Marshal(sweepSpecJSON{
		Lambdas:      spec.Lambdas,
		Gammas:       spec.Gammas,
		Seeds:        spec.Seeds,
		Seed:         spec.Seed,
		Counts:       spec.Counts,
		Layout:       spec.Layout,
		Separated:    spec.Separated,
		DisableSwaps: spec.DisableSwaps,
		Model:        spec.Model,
		Couplings:    spec.Couplings,
		CouplingAxes: spec.CouplingAxes,
		Steps:        spec.Steps,
		Workers:      spec.Workers,
		Thresholds:   spec.Thresholds,
		Retries:      spec.Retries,
		BackoffMS:    spec.Backoff.Milliseconds(),
	})
}

// UnmarshalJSON decodes the wire form, rejecting unknown fields and
// leaving every runtime-only field zero. The result is not validated; call
// Validate before running it.
func (spec *SweepSpec) UnmarshalJSON(data []byte) error {
	var w sweepSpecJSON
	if err := decodeStrict(data, &w); err != nil {
		return fmt.Errorf("sops: decode sweep spec: %w", err)
	}
	*spec = SweepSpec{
		Lambdas:      w.Lambdas,
		Gammas:       w.Gammas,
		Seeds:        w.Seeds,
		Seed:         w.Seed,
		Counts:       w.Counts,
		Layout:       w.Layout,
		Separated:    w.Separated,
		DisableSwaps: w.DisableSwaps,
		Model:        w.Model,
		Couplings:    w.Couplings,
		CouplingAxes: w.CouplingAxes,
		Steps:        w.Steps,
		Workers:      w.Workers,
		Thresholds:   w.Thresholds,
		Retries:      w.Retries,
		Backoff:      time.Duration(w.BackoffMS) * time.Millisecond,
	}
	return nil
}

// decodeStrict unmarshals data into v, failing on unknown fields.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
