package sops

import (
	"context"
	"testing"
)

// TestDistributedFaultInjection exercises the public fault surface: armed
// injection drops slots and crash-stops sources, audits run on cadence and
// recovery, and the quiescent world still satisfies every invariant.
func TestDistributedFaultInjection(t *testing.T) {
	d, err := NewDistributed(Options{Counts: []int{15, 15}, Lambda: 4, Gamma: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EnableFaults(FaultOptions{CrashProb: 2}); err == nil {
		t.Fatal("out-of-range fault options accepted")
	}
	if err := d.EnableFaults(FaultOptions{
		Seed:      3,
		CrashProb: 0.001,
		CrashLen:  100,
		DropFrac:  0.05,
	}); err != nil {
		t.Fatal(err)
	}
	d.SetAuditEvery(10_000)
	performed, _, _, err := d.RunContext(context.Background(), 200_000, 4)
	if err != nil {
		t.Fatalf("faulty run failed: %v", err)
	}
	if performed == 0 || performed == 200_000 {
		t.Fatalf("performed %d of 200000 — faults did not drop any slots", performed)
	}
	st := d.FaultStats()
	if st.Dropped == 0 || st.Crashes == 0 {
		t.Fatalf("no faults injected: %+v", st)
	}
	if performed+st.Dropped != 200_000 {
		t.Fatalf("slots not conserved: %d performed + %d dropped", performed, st.Dropped)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after faulty run: %v", err)
	}
	if err := d.EnableFaults(FaultOptions{}); err != nil {
		t.Fatal(err)
	}
	if d.FaultStats() != (FaultStats{}) {
		t.Fatal("disarmed injector still reports stats")
	}
}
