package sops

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := SweepSpec{
		Lambdas: []float64{1.05, 4},
		Gammas:  []float64{1, 4},
		Seeds:   []uint64{1, 2},
		Counts:  Bichromatic(20),
		Layout:  LayoutLine,
		Steps:   30_000,
		Seed:    1,
	}
	var base []CellResult
	for _, workers := range []int{1, 4, 16} {
		spec.Workers = workers
		got, err := Sweep(context.Background(), spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 8 {
			t.Fatalf("workers=%d: %d cells", workers, len(got))
		}
		if base == nil {
			base = got
			continue
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d produced different results than workers=1", workers)
		}
	}
	// Cells are enumerated λ-major, then γ, then seed.
	if base[0].Lambda != 1.05 || base[0].Gamma != 1 || base[0].Seed != 1 {
		t.Fatalf("cell order: %+v", base[0])
	}
	if base[1].Seed != 2 || base[2].Gamma != 4 || base[4].Lambda != 4 {
		t.Fatalf("cell order: %+v %+v %+v", base[1], base[2], base[4])
	}
}

func TestSweepMatchesSerialSystem(t *testing.T) {
	spec := SweepSpec{
		Lambdas: []float64{4},
		Gammas:  []float64{4},
		Counts:  Bichromatic(20),
		Layout:  LayoutLine,
		Steps:   20_000,
		Seed:    9,
		Workers: 4,
	}
	cells, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Options{Counts: Bichromatic(20), Layout: LayoutLine, Lambda: 4, Gamma: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sys.RunSteps(20_000)
	if cells[0].Snap != sys.Metrics() {
		t.Fatalf("sweep cell diverges from serial run:\n%+v\n%+v", cells[0].Snap, sys.Metrics())
	}
}

func TestSweepObserveAndValidation(t *testing.T) {
	if _, err := Sweep(context.Background(), SweepSpec{Counts: Bichromatic(10), Steps: 1}); !errors.Is(err, ErrEmptySweep) {
		t.Fatalf("empty grid error %v", err)
	}
	var mu sync.Mutex
	calls := 0
	_, err := Sweep(context.Background(), SweepSpec{
		Lambdas: []float64{2, 4},
		Gammas:  []float64{2},
		Counts:  Bichromatic(10),
		Steps:   100,
		Workers: 2,
		Observe: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if total != 2 || done < 1 || done > 2 {
				t.Errorf("observe(%d, %d)", done, total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("observer called %d times", calls)
	}
}

func TestSweepAggregatesCellErrors(t *testing.T) {
	// γ = 0 cells fail validation; the λ×γ sweep must still deliver the
	// healthy cells and identify the broken ones.
	cells, err := Sweep(context.Background(), SweepSpec{
		Lambdas: []float64{4},
		Gammas:  []float64{4, 0},
		Counts:  Bichromatic(10),
		Steps:   100,
		Seed:    3,
	})
	if err == nil {
		t.Fatal("invalid cells not reported")
	}
	if !errors.Is(err, ErrBadGamma) {
		t.Fatalf("aggregate error %v does not unwrap to ErrBadGamma", err)
	}
	if cells[0].Err != nil || cells[0].Snap.N != 10 {
		t.Fatalf("healthy cell %+v", cells[0])
	}
	if !errors.Is(cells[1].Err, ErrBadGamma) {
		t.Fatalf("failed cell error %v", cells[1].Err)
	}
}

func TestSweepCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	cells, err := Sweep(ctx, SweepSpec{
		Lambdas: []float64{1.05, 2, 4, 6},
		Gammas:  []float64{1, 2, 4, 6},
		Counts:  Bichromatic(100),
		Layout:  LayoutLine,
		Steps:   1 << 40, // far beyond any time budget: only cancellation ends cells
		Seed:    1,
		Workers: 4,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("sweep error %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: %v", elapsed)
	}
	if len(cells) != 16 {
		t.Fatalf("%d cells", len(cells))
	}
	for _, c := range cells {
		if c.Err == nil {
			t.Fatalf("cell (%g, %g) claims completion of 2^40 steps", c.Lambda, c.Gamma)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d -> %d", before, n)
	}
}

func TestNamedOptionErrors(t *testing.T) {
	cases := []struct {
		opts Options
		want error
	}{
		{Options{Lambda: 4, Gamma: 4}, ErrNoCounts},
		{Options{Counts: []int{0, 0}, Lambda: 4, Gamma: 4}, ErrNoCounts},
		{Options{Counts: []int{5, -1}, Lambda: 4, Gamma: 4}, ErrNoCounts},
		{Options{Counts: []int{5, 5}, Lambda: 0, Gamma: 4}, ErrBadLambda},
		{Options{Counts: []int{5, 5}, Lambda: math.NaN(), Gamma: 4}, ErrBadLambda},
		{Options{Counts: []int{5, 5}, Lambda: math.Inf(1), Gamma: 4}, ErrBadLambda},
		{Options{Counts: []int{5, 5}, Lambda: 4, Gamma: -2}, ErrBadGamma},
		{Options{Counts: []int{5, 5}, Lambda: 4, Gamma: math.NaN()}, ErrBadGamma},
	}
	for _, tc := range cases {
		if err := tc.opts.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("Validate(%+v) = %v, want %v", tc.opts, err, tc.want)
		}
		if _, err := New(tc.opts); !errors.Is(err, tc.want) {
			t.Errorf("New(%+v) = %v, want %v", tc.opts, err, tc.want)
		}
		if _, err := NewDistributed(tc.opts); !errors.Is(err, tc.want) {
			t.Errorf("NewDistributed(%+v) = %v, want %v", tc.opts, err, tc.want)
		}
	}
	if err := (Options{Counts: []int{5, 5}, Lambda: 4, Gamma: 4}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func TestSystemRunContext(t *testing.T) {
	mk := func() *System {
		sys, err := New(Options{Counts: []int{10, 10}, Lambda: 4, Gamma: 4, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	plain, ctxed := mk(), mk()
	plain.RunSteps(40_000)
	done, err := ctxed.Run(context.Background(), RunSpec{Steps: 40_000})
	if err != nil || done != 40_000 {
		t.Fatalf("Run: done=%d err=%v", done, err)
	}
	if plain.Config().CanonicalKey() != ctxed.Config().CanonicalKey() {
		t.Fatal("Run diverges from RunSteps")
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if done, err := ctxed.Run(cancelled, RunSpec{Steps: 1000}); done != 0 || err == nil {
		t.Fatalf("pre-cancelled Run: done=%d err=%v", done, err)
	}
}

func TestSystemRunWithContext(t *testing.T) {
	sys, err := New(Options{Counts: []int{5, 5}, Lambda: 2, Gamma: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	done, err := sys.Run(context.Background(), RunSpec{Steps: 100_000, SampleEvery: 1000, Observer: func(Snapshot) bool {
		calls++
		return calls < 5
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 || done != 5000 {
		t.Fatalf("early stop: calls=%d done=%d", calls, done)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if done, err := sys.Run(cancelled, RunSpec{Steps: 1000, SampleEvery: 10, Observer: func(Snapshot) bool { return true }}); done != 0 || err == nil {
		t.Fatalf("pre-cancelled Run: done=%d err=%v", done, err)
	}
}

// TestDistributedConcurrentObservation exercises Snapshot and SetFrozen
// while a concurrent run is in flight — the documented safe concurrent
// surface — and is meant to run under -race.
func TestDistributedConcurrentObservation(t *testing.T) {
	d, err := NewDistributed(Options{Counts: []int{20, 20}, Lambda: 4, Gamma: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := d.Snapshot()
			if snap.N() != 40 {
				t.Error("snapshot lost particles")
				return
			}
			d.SetFrozen(3, true)
			_ = d.Frozen(3)
			d.SetFrozen(3, false)
		}
	}()
	performed, _, _, err := d.RunContext(context.Background(), 300_000, 4)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if performed != 300_000 {
		t.Fatalf("performed %d activations", performed)
	}
	snap := d.Snapshot()
	if !snap.Connected() || !snap.HoleFree() {
		t.Fatal("invariants violated under concurrent observation")
	}
}

func TestDistributedRunContextCancellation(t *testing.T) {
	d, err := NewDistributed(Options{Counts: []int{20, 20}, Lambda: 4, Gamma: 4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	performed, _, _, err := d.RunContext(ctx, 1<<40, 4)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation not prompt")
	}
	if performed == 0 || performed >= 1<<40 {
		t.Fatalf("performed %d", performed)
	}
	snap := d.Snapshot()
	if !snap.Connected() || !snap.HoleFree() {
		t.Fatal("cancelled run violated invariants")
	}
	// Metrics reflect only the activations actually performed.
	if m := d.Metrics(); m.Steps != performed {
		t.Fatalf("metrics steps %d != performed %d", m.Steps, performed)
	}
}

func TestDistributedDeterministicScheduling(t *testing.T) {
	run := func() *Config {
		d, err := NewDistributed(Options{Counts: []int{15, 15}, Lambda: 4, Gamma: 4, Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		// Two sequential runs: each consumes the next scheduler seed.
		if _, _, _, err := d.RunContext(context.Background(), 50_000, 1); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := d.RunContext(context.Background(), 50_000, 1); err != nil {
			t.Fatal(err)
		}
		return d.Snapshot()
	}
	if run().CanonicalKey() != run().CanonicalKey() {
		t.Fatal("RunContext scheduling not reproducible from Options.Seed")
	}
}
