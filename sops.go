// Package sops is a library for stochastic self-organizing particle
// systems on the triangular lattice. It implements the local, distributed
// separation/integration algorithm of Cannon, Daymude, Gökmen, Randall and
// Richa ("A Local Stochastic Algorithm for Separation in Heterogeneous
// Self-Organizing Particle Systems"), together with the amoebot-model
// substrate it runs on, the compression algorithm of PODC '16 as a special
// case, and the measurement and analysis machinery used to reproduce the
// paper's results.
//
// The core object is a System: a heterogeneous particle configuration
// evolving under Markov chain M with bias parameters λ (favoring more
// neighbors) and γ (favoring like-colored neighbors). Large λ and γ yield
// compressed, separated systems; γ near one yields compressed, integrated
// systems; the monochromatic γ = 1 case is compression.
//
//	sys, err := sops.New(sops.Options{
//		Counts: []int{50, 50}, // 50 particles of each color
//		Lambda: 4,
//		Gamma:  4,
//		Seed:   1,
//	})
//	if err != nil { ... }
//	sys.Run(context.Background(), sops.RunSpec{Steps: 1_000_000})
//	fmt.Println(sys.Metrics().Phase) // compressed-separated
//
// Subpackages under internal/ implement the substrates (lattice geometry,
// configurations, the chain, the distributed amoebot runtime, polymer
// models and cluster expansions, Ising dynamics, exact enumeration); this
// package is the stable public surface.
package sops

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"

	"sops/internal/core"
	"sops/internal/metrics"
	"sops/internal/psys"
	"sops/internal/rng"
	"sops/internal/seal"
	"sops/internal/snapbin"
	"sops/internal/telemetry"
	"sops/internal/viz"
)

// Re-exported configuration and measurement types.
type (
	// Params are the bias parameters (λ, γ) of the separation chain.
	Params = core.Params
	// Config is a particle-system configuration.
	Config = psys.Config
	// Color identifies a particle's immutable color class.
	Color = psys.Color
	// Particle is a located, colored particle.
	Particle = psys.Particle
	// Snapshot is a numeric summary of a configuration.
	Snapshot = metrics.Snapshot
	// Thresholds parameterizes compression/separation classification.
	Thresholds = metrics.Thresholds
	// Phase is one of the four regimes of the paper's Figure 3.
	Phase = metrics.Phase
	// Outcome describes the effect of a single chain step.
	Outcome = core.Outcome
	// Stats counts chain proposals by outcome.
	Stats = core.Stats
)

// Re-exported phase and outcome values.
const (
	CompressedSeparated  = metrics.CompressedSeparated
	CompressedIntegrated = metrics.CompressedIntegrated
	ExpandedSeparated    = metrics.ExpandedSeparated
	ExpandedIntegrated   = metrics.ExpandedIntegrated

	Rejected = core.Rejected
	Moved    = core.Moved
	Swapped  = core.Swapped
)

// Layout names an initial arrangement.
type Layout = core.Layout

// Initial layouts.
const (
	// LayoutSpiral is a compact, near-minimal-perimeter start.
	LayoutSpiral = core.LayoutSpiral
	// LayoutLine is a maximal-perimeter adversarial start.
	LayoutLine = core.LayoutLine
)

// DefaultThresholds returns the classification thresholds used for the
// paper's n ≈ 100 workloads.
func DefaultThresholds() Thresholds { return metrics.DefaultThresholds() }

// Bichromatic returns the color counts for the paper's standard workload:
// n particles split as evenly as possible between two colors.
func Bichromatic(n int) []int { return core.Bichromatic(n) }

// Named validation errors. Constructors wrap these with detail, so test
// them with errors.Is rather than string comparison.
var (
	// ErrNoCounts reports that Options.Counts describes no particles
	// (missing, all zero, or containing a negative count).
	ErrNoCounts = errors.New("sops: Counts must describe at least one particle")
	// ErrBadLambda reports a non-positive or non-finite Options.Lambda.
	ErrBadLambda = errors.New("sops: Lambda must be positive and finite")
	// ErrBadGamma reports a non-positive or non-finite Options.Gamma.
	ErrBadGamma = errors.New("sops: Gamma must be positive and finite")
	// ErrBadLayout reports an Options.Layout that names no known initial
	// arrangement (the zero value defaults to LayoutSpiral).
	ErrBadLayout = errors.New("sops: Layout must be LayoutSpiral or LayoutLine")
)

// ErrUnknownModel reports an Options.Model (or SweepSpec.Model) naming no
// registered dynamics model. Wire documents without a model field decode
// to the separation model and never hit this error.
var ErrUnknownModel = core.ErrUnknownModel

// ErrBadCoupling reports a coupling name a model does not declare, or a
// coupling value it rejects. Couplings named "lambda" or "gamma" keep
// reporting ErrBadLambda/ErrBadGamma for continuity with older releases.
var ErrBadCoupling = core.ErrBadCoupling

// Options configures a System.
type Options struct {
	// Counts gives the number of particles of each color; Counts[i]
	// particles receive color i. Required.
	Counts []int
	// Layout selects the initial arrangement; defaults to LayoutSpiral.
	Layout Layout
	// Separated starts from a fully color-separated arrangement instead of
	// a random coloring (useful for integration experiments).
	Separated bool
	// Lambda is the neighbor bias λ > 0. Required.
	Lambda float64
	// Gamma is the like-color bias γ > 0. Required.
	Gamma float64
	// DisableSwaps turns off swap moves (the paper's ablation).
	DisableSwaps bool
	// Seed drives all randomness; equal seeds give identical runs.
	Seed uint64
	// Thresholds overrides the phase-classification thresholds.
	Thresholds *Thresholds
	// Model names the dynamics the System runs, from the model registry
	// ("separation", "alignment", "anneal", …; see Models). Empty selects
	// the paper's separation dynamics, exactly as before the registry
	// existed. Unknown names are rejected with ErrUnknownModel.
	Model string
	// Couplings sets the model's named coupling constants; couplings not
	// listed take the model's defaults. For models declaring couplings
	// named "lambda"/"gamma" the scalar Lambda/Gamma fields set them too
	// (an entry here wins); for the separation model Lambda and Gamma
	// remain required, so legacy option documents behave identically.
	// Unknown names are rejected with ErrBadCoupling.
	Couplings map[string]float64
}

// Validate checks the options, returning an error wrapping ErrNoCounts,
// ErrBadLayout, ErrBadLambda or ErrBadGamma on failure.
func (o Options) Validate() error {
	if err := validateCounts(o.Counts); err != nil {
		return err
	}
	if err := validateLayout(o.Layout); err != nil {
		return err
	}
	return o.validateParams()
}

// validateCounts rejects color counts that describe no particles; shared by
// Options.Validate and SweepSpec.Validate.
func validateCounts(counts []int) error {
	n := 0
	for i, k := range counts {
		if k < 0 {
			return fmt.Errorf("%w (negative count %d for color %d)", ErrNoCounts, k, i)
		}
		n += k
	}
	if n == 0 {
		return ErrNoCounts
	}
	return nil
}

// validateLayout rejects layout values that name no known arrangement
// instead of letting them fall through to core.Initial.
func validateLayout(l Layout) error {
	switch l {
	case 0, LayoutSpiral, LayoutLine:
		return nil
	}
	return fmt.Errorf("%w (got Layout(%d))", ErrBadLayout, uint8(l))
}

// validateParams checks the model and its coupling values, for
// constructors that take a ready-made configuration and ignore Counts.
func (o Options) validateParams() error {
	_, _, err := o.resolveModel()
	return err
}

// resolveModel resolves the dynamics model and its full coupling vector
// from the options: registry lookup, scalar Lambda/Gamma folded onto the
// couplings of those names, the Couplings map applied on top, and every
// value validated. For the separation model the scalars stay required;
// for other models they act as optional overrides of the declared
// defaults.
func (o Options) resolveModel() (core.Model, []float64, error) {
	m, err := core.LookupModel(o.Model)
	if err != nil {
		return nil, nil, fmt.Errorf("sops: %w", err)
	}
	sep := m.Name() == "separation"
	cs := m.Couplings()
	coup := make([]float64, len(cs))
	for i, cdef := range cs {
		v := cdef.Default
		switch cdef.Name {
		case "lambda":
			if sep || o.Lambda != 0 {
				v = o.Lambda
			}
		case "gamma":
			if sep || o.Gamma != 0 {
				v = o.Gamma
			}
		}
		if ov, ok := o.Couplings[cdef.Name]; ok {
			v = ov
		}
		coup[i] = v
	}
	for name := range o.Couplings {
		if core.CouplingIndex(m, name) < 0 {
			return nil, nil, fmt.Errorf("%w (model %q declares no coupling %q)", ErrBadCoupling, m.Name(), name)
		}
	}
	for i, cdef := range cs {
		v := coup[i]
		bad := math.IsNaN(v) || math.IsInf(v, 0) || v <= 0
		switch {
		case bad && cdef.Name == "lambda":
			return nil, nil, fmt.Errorf("%w (got %v)", ErrBadLambda, v)
		case bad && cdef.Name == "gamma":
			return nil, nil, fmt.Errorf("%w (got %v)", ErrBadGamma, v)
		case bad:
			return nil, nil, fmt.Errorf("%w (%s must be positive and finite, got %v)", ErrBadCoupling, cdef.Name, v)
		}
		if cdef.Integer && (v != math.Trunc(v) || v < 1) {
			return nil, nil, fmt.Errorf("%w (%s must be a positive integer, got %v)", ErrBadCoupling, cdef.Name, v)
		}
	}
	return m, coup, nil
}

// CouplingInfo describes one named coupling constant of a model.
type CouplingInfo struct {
	// Name is the wire name (Options.Couplings key, sweep axis name).
	Name string
	// Default is the value used when the coupling is not set.
	Default float64
	// Integer marks couplings restricted to positive integers.
	Integer bool
}

// ModelInfo describes one registered dynamics model.
type ModelInfo struct {
	// Name is the registry name (Options.Model value).
	Name string
	// Couplings lists the model's coupling constants in declared order.
	Couplings []CouplingInfo
	// Observables lists the per-model order parameters the model exports
	// through System.Observables, if any.
	Observables []string
}

// Models describes every registered dynamics model, sorted by name — the
// discovery surface behind `sops -list-models` and daemon clients.
func Models() []ModelInfo {
	names := core.ModelNames()
	out := make([]ModelInfo, 0, len(names))
	for _, name := range names {
		m, err := core.LookupModel(name)
		if err != nil {
			continue
		}
		info := ModelInfo{Name: name}
		for _, c := range m.Couplings() {
			info.Couplings = append(info.Couplings, CouplingInfo{Name: c.Name, Default: c.Default, Integer: c.Integer})
		}
		if obs, ok := m.(core.Observables); ok {
			info.Observables = append(info.Observables, obs.ObservableNames()...)
		}
		out = append(out, info)
	}
	return out
}

// initialConfig builds the starting configuration described by opts — the
// construction shared by New and NewDistributed.
func initialConfig(opts Options) (*psys.Config, error) {
	layout := opts.Layout
	if layout == 0 {
		layout = LayoutSpiral
	}
	var cfg *psys.Config
	var err error
	if opts.Separated {
		cfg, err = core.InitialSeparated(opts.Counts)
	} else {
		cfg, err = core.Initial(layout, opts.Counts, opts.Seed)
	}
	if err != nil {
		return nil, fmt.Errorf("sops: initial configuration: %w", err)
	}
	return cfg, nil
}

// System is a particle system evolving under the separation chain M.
// It is not safe for concurrent use; for a concurrent distributed execution
// see Distributed.
type System struct {
	chain *core.Chain
	th    metrics.Thresholds
	meter *metrics.Meter

	// Auto-checkpointing, configured by SetAutoCheckpoint: during RunContext
	// the chain state is written atomically to ckptPath every ckptEvery
	// steps, so a killed process loses at most one interval of work.
	ckptPath  string
	ckptEvery uint64

	// enc, sealed and cpView are the reusable scratch of the binary
	// checkpoint writer; after the first write, checkpointing allocates
	// nothing.
	enc    snapbin.Encoder
	sealed []byte
	cpView snapbin.Checkpoint
}

// checkpointBinary selects the wire format of the checkpoint writers:
// the snapbin binary frame (default) or the legacy JSON document. Both
// restore through the same sniffing readers; the JSON leg exists for the
// documented text interchange and is pinned by cross-format tests.
var checkpointBinary = true

// New builds a System from options.
func New(opts Options) (*System, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	cfg, err := initialConfig(opts)
	if err != nil {
		return nil, err
	}
	return NewFromConfig(cfg, opts)
}

// NewFromConfig builds a System around an existing configuration, which
// must be connected. The System takes ownership of cfg. Counts, Layout and
// Separated in opts are ignored.
func NewFromConfig(cfg *psys.Config, opts Options) (*System, error) {
	m, coup, err := opts.resolveModel()
	if err != nil {
		return nil, err
	}
	chain, err := core.NewWithModel(cfg, core.Params{
		DisableSwaps: opts.DisableSwaps,
		Seed:         opts.Seed,
	}, m, coup)
	if err != nil {
		return nil, fmt.Errorf("sops: %w", err)
	}
	th := metrics.DefaultThresholds()
	if opts.Thresholds != nil {
		th = *opts.Thresholds
	}
	return &System{chain: chain, th: th, meter: metrics.NewMeter(th)}, nil
}

// Step performs one iteration of the chain.
func (s *System) Step() Outcome { return s.chain.Step() }

// Telemetry re-exported types: the live-observability layer RunSpec and
// SweepSpec plug into. See the README's Observability section.
type (
	// Probe is a set of live, concurrently readable step counters the
	// engines publish into with zero allocations on the hot path.
	Probe = telemetry.Probe
	// ProbeCounters is a point-in-time reading of a Probe.
	ProbeCounters = telemetry.Counters
	// ProbeStatus is a Probe reading with derived rates (acceptance, swap
	// fraction, windowed steps/sec).
	ProbeStatus = telemetry.Status
	// Recorder samples a trajectory into a bounded ring buffer and flushes
	// CSV/JSONL trace files atomically.
	Recorder = telemetry.Recorder
	// TraceSample is one recorded trajectory point: a metrics Snapshot
	// plus the chain's Hamiltonian.
	TraceSample = telemetry.Sample
	// SweepTracker aggregates live per-cell progress of a sweep.
	SweepTracker = telemetry.SweepTracker
	// SweepProgress is a point-in-time aggregate view of a sweep.
	SweepProgress = telemetry.SweepProgress
)

// NewProbe returns a ready telemetry probe.
func NewProbe() *Probe { return telemetry.NewProbe() }

// NewRecorder returns a trace recorder holding at most capacity samples,
// recording at least every steps apart (0 records every offered sample).
func NewRecorder(capacity int, every uint64) *Recorder {
	return telemetry.NewRecorder(capacity, every)
}

// Telemetry attaches live observability to a run. Both fields are
// optional and may be shared — a Probe with a debug listener, a Recorder
// across a checkpoint/resume boundary.
type Telemetry struct {
	// Probe receives the chain's step statistics in amortized batches
	// while the run is in flight; after Run returns its totals equal the
	// work performed. The probe stays attached after the run, so bare
	// Step loops keep feeding it.
	Probe *Probe
	// Recorder is offered a TraceSample at every sample boundary of the
	// run (see RunSpec.SampleEvery); its own cadence then decides what is
	// kept, so one recorder can follow a run at a coarser resolution than
	// the observer.
	Recorder *Recorder
}

// RunSpec describes one run of a System: how many steps, how often to
// sample the configuration, and what to do with the samples. The zero
// value of everything but Steps is valid: no sampling, no telemetry.
type RunSpec struct {
	// Steps is the number of chain iterations to perform.
	Steps uint64
	// SampleEvery is the sampling cadence in steps: the run pauses at
	// every multiple of SampleEvery (in absolute step count, so resumed
	// runs sample at the same trajectory points as uninterrupted ones)
	// to capture a Snapshot for the Observer and Recorder. 0 samples
	// once, when the run ends.
	SampleEvery uint64
	// Observer, if non-nil, receives each sample; returning false stops
	// the run early. On cancellation it is invoked one final time with
	// the state the run stopped in.
	Observer func(Snapshot) bool
	// Telemetry optionally attaches a live Probe and a trace Recorder.
	Telemetry *Telemetry
	// Workers selects the execution engine. 0 or 1 runs the serial chain —
	// bit-identical to every previous release, so seeded trajectories and
	// checkpoints stay reproducible. Workers > 1 runs this RunSpec on the
	// sharded multicore executor: the configuration is partitioned into
	// Workers row bands over a tiled store and proposals run concurrently
	// with striped boundary locking. Sharded segments are serializable
	// (equivalent to some serial proposal order, with the same stationary
	// distribution) but not deterministic — thread interleaving picks the
	// order — so runs with Workers > 1 trade replayability for throughput.
	// After the run the System carries the evolved configuration and
	// cumulative statistics and can be measured, checkpointed, or resumed
	// with any Workers setting.
	Workers int
}

// Run performs up to spec.Steps iterations, sampling on spec's cadence and
// stopping early when ctx is cancelled or the Observer returns false. It
// returns the iterations actually performed, with ctx's error if the run
// was cut short. The System remains valid after a cancelled run: it can be
// resumed, measured or checkpointed.
//
// If SetAutoCheckpoint configured a checkpoint file, the state is written
// to it (atomically) after every checkpoint interval and once more when
// the run stops, including on cancellation; a checkpoint write failure
// stops the run and is returned.
//
// deriveTrace hands rec the run constants — λ, γ and the per-color
// particle census — that let binary trace flushes elide derivable
// columns. The census is fixed for the run: moves and swaps of chain M
// both conserve per-color counts.
func (s *System) deriveTrace(rec *Recorder) {
	params := s.chain.Params()
	cfg := s.chain.Config()
	var counts [psys.MaxColors]int
	k := cfg.NumColors()
	for i := 0; i < k; i++ {
		counts[i] = cfg.ColorCount(psys.Color(i))
	}
	rec.SetDerivation(params.Lambda, params.Gamma, counts[:k])
}

// Run is the single run entry point; only the bare RunSteps loop exists
// beside it (the deprecated RunContext/RunWith/RunWithContext wrappers of
// earlier releases are gone).
func (s *System) Run(ctx context.Context, spec RunSpec) (uint64, error) {
	if spec.Workers > 1 {
		return s.runSharded(ctx, spec)
	}
	var rec *Recorder
	if spec.Telemetry != nil {
		if spec.Telemetry.Probe != nil {
			s.chain.SetProbe(spec.Telemetry.Probe)
		}
		rec = spec.Telemetry.Recorder
	}
	if rec != nil {
		s.deriveTrace(rec)
	}
	if spec.Observer == nil && rec == nil {
		return s.runCheckpointed(ctx, spec.Steps)
	}
	sample := func() Snapshot {
		snap := s.Metrics()
		if rec != nil {
			rec.Offer(TraceSample{Snap: snap, Energy: s.chain.Energy()})
		}
		return snap
	}
	var done uint64
	for {
		batch := spec.Steps - done
		if spec.SampleEvery > 0 {
			// Stop at the next absolute multiple of the cadence, so a
			// resumed run samples the same trajectory points as the
			// uninterrupted one.
			if next := spec.SampleEvery - s.Steps()%spec.SampleEvery; next < batch {
				batch = next
			}
		}
		n, err := s.runCheckpointed(ctx, batch)
		done += n
		if err != nil {
			// The run was cut short mid-interval: still surface the
			// final state to the observer and the trace.
			snap := sample()
			if spec.Observer != nil {
				spec.Observer(snap)
			}
			return done, err
		}
		snap := sample()
		if spec.Observer != nil && !spec.Observer(snap) {
			return done, nil
		}
		if done >= spec.Steps {
			return done, nil
		}
	}
}

// runSharded executes one RunSpec on the sharded multicore engine: the
// chain's configuration is lifted into a tile store, evolved by
// spec.Workers concurrent proposal workers, sampled through the tiled
// metrics path at the spec's cadence, and folded back into the serial
// chain when the segment ends — so the System before and after looks
// exactly like it ran the steps serially, modulo the proposal order.
// Worker rng streams derive from SeedAt(chain seed, steps-so-far), so
// consecutive sharded segments of one System never reuse a stream.
func (s *System) runSharded(ctx context.Context, spec RunSpec) (uint64, error) {
	params := s.chain.Params()
	start := s.Steps()
	sh, err := core.NewShardedWithModel(s.chain.Snapshot(), params, s.chain.Model(), s.chain.Couplings(), core.ShardedOptions{
		Workers: spec.Workers,
		Seed:    rng.SeedAt(params.Seed, start),
		// Scheduled models anneal by absolute step count; the offset keeps
		// a sharded segment's schedule aligned with the steps already run.
		StepOffset: start,
	})
	if err != nil {
		return 0, fmt.Errorf("sops: sharded run: %w", err)
	}
	var rec *Recorder
	if spec.Telemetry != nil {
		if spec.Telemetry.Probe != nil {
			// Fan worker batches into the caller's probe through a
			// ProbeSet, so per-band attribution exists while the shared
			// probe keeps its serial-run contract.
			ps := telemetry.NewProbeSet(spec.Telemetry.Probe, spec.Workers)
			probes := make([]core.Probe, spec.Workers)
			for i := range probes {
				probes[i] = ps.Worker(i)
			}
			if err := sh.SetWorkerProbes(probes); err != nil {
				return 0, fmt.Errorf("sops: sharded run: %w", err)
			}
		}
		rec = spec.Telemetry.Recorder
	}
	if rec != nil {
		s.deriveTrace(rec)
	}

	sample := func() Snapshot {
		snap := s.meter.CaptureStore(sh.Store(), start+sh.Stats().Steps)
		if rec != nil {
			rec.Offer(TraceSample{Snap: snap, Energy: sh.Energy()})
		}
		return snap
	}
	// fold moves the evolved configuration and statistics back into the
	// serial chain, preserving its parameters, rng stream, and probe
	// accounting, then writes one checkpoint if auto-checkpointing is on.
	fold := func() error {
		final, err := sh.Snapshot()
		if err != nil {
			return fmt.Errorf("sops: sharded run: %w", err)
		}
		if err := s.chain.ReplaceConfig(final); err != nil {
			return fmt.Errorf("sops: sharded run: %w", err)
		}
		s.chain.AbsorbStats(sh.Stats())
		if s.ckptEvery > 0 && s.ckptPath != "" {
			return s.WriteCheckpoint(s.ckptPath)
		}
		return nil
	}

	sampling := spec.Observer != nil || rec != nil
	var done uint64
	for done < spec.Steps {
		batch := spec.Steps - done
		if sampling && spec.SampleEvery > 0 {
			// Stop at absolute multiples of the cadence, like the serial
			// path, so resumed runs sample the same trajectory points.
			if next := spec.SampleEvery - (start+done)%spec.SampleEvery; next < batch {
				batch = next
			}
		}
		n, err := sh.Run(ctx, batch)
		done += n
		if err != nil {
			if sampling {
				snap := sample()
				if spec.Observer != nil {
					spec.Observer(snap)
				}
			}
			return done, errors.Join(err, fold())
		}
		if sampling {
			snap := sample()
			if spec.Observer != nil && !spec.Observer(snap) {
				break
			}
		}
	}
	return done, fold()
}

// runCheckpointed performs up to steps iterations with cancellation,
// honoring the SetAutoCheckpoint configuration.
func (s *System) runCheckpointed(ctx context.Context, steps uint64) (uint64, error) {
	if s.ckptEvery == 0 || s.ckptPath == "" {
		return s.chain.RunContext(ctx, steps)
	}
	var done uint64
	for done < steps {
		batch := s.ckptEvery
		if steps-done < batch {
			batch = steps - done
		}
		n, err := s.chain.RunContext(ctx, batch)
		done += n
		if werr := s.WriteCheckpoint(s.ckptPath); werr != nil && err == nil {
			err = werr
		}
		if err != nil {
			return done, err
		}
	}
	return done, nil
}

// RunSteps performs steps iterations unconditionally. It never checkpoints
// and takes no context; for long or observable runs use Run.
func (s *System) RunSteps(steps uint64) { s.chain.Run(steps) }

// Steps returns the number of iterations performed so far.
func (s *System) Steps() uint64 { return s.chain.Stats().Steps }

// Stats returns proposal statistics.
func (s *System) Stats() Stats { return s.chain.Stats() }

// Params returns the chain's bias parameters. For non-separation models
// Lambda/Gamma reflect the model's couplings of those names (1 when the
// model declares none).
func (s *System) Params() Params { return s.chain.Params() }

// Model returns the registry name of the dynamics the System runs.
func (s *System) Model() string { return s.chain.ModelName() }

// Couplings returns a copy of the System's full nominal coupling vector,
// in the model's declared order (see Models for the names).
func (s *System) Couplings() []float64 { return s.chain.Couplings() }

// Observables evaluates the model's exported order parameters over the
// live configuration, returning parallel name and value slices — (nil,
// nil) for a model that ships none. Scheduled models report at the
// effective couplings in force.
func (s *System) Observables() ([]string, []float64) { return s.chain.Observables() }

// N returns the number of particles.
func (s *System) N() int { return s.chain.N() }

// Config returns the live configuration for reading. Mutating it corrupts
// the System; use Snapshot for an independent copy.
func (s *System) Config() *Config { return s.chain.Config() }

// Snapshot returns an independent copy of the current configuration.
func (s *System) Snapshot() *Config { return s.chain.Snapshot() }

// Metrics summarizes the current configuration. Captures go through a
// per-System metrics.Meter, so the snapshot path reuses its flood-fill
// scratch and allocates nothing at steady state.
func (s *System) Metrics() Snapshot {
	return s.meter.Capture(s.chain.Config(), s.chain.Stats().Steps)
}

// Energy returns the Hamiltonian of the current configuration under the
// System's model — for the separation chain E(σ) = −e(σ)·ln λ − a(σ)·ln γ
// — the quantity the chain's stationary distribution exponentially favors
// minimizing. Scheduled models report at the effective couplings in
// force. Recorded traces carry it alongside each metrics sample.
func (s *System) Energy() float64 { return s.chain.Energy() }

// ASCII renders the current configuration as text.
func (s *System) ASCII() string { return viz.ASCII(s.chain.Config()) }

// RenderSVG writes the current configuration as an SVG document.
func (s *System) RenderSVG(w io.Writer) error { return viz.SVG(w, s.chain.Config()) }

// Classify assigns a configuration to one of the four Figure 3 phases.
func Classify(cfg *Config, th Thresholds) Phase { return metrics.Classify(cfg, th) }

// Capture summarizes an arbitrary configuration.
func Capture(cfg *Config, steps uint64, th Thresholds) Snapshot {
	return metrics.Capture(cfg, steps, th)
}

// IsCompressed reports whether cfg is α-compressed.
func IsCompressed(cfg *Config, alpha float64) bool { return metrics.IsCompressed(cfg, alpha) }

// IsSeparated reports whether cfg is (β,δ)-separated (Definition 3),
// using the certificate regions described in the metrics package.
func IsSeparated(cfg *Config, beta, delta float64) bool {
	return metrics.IsSeparated(cfg, beta, delta)
}

// CheckInvariants audits the live configuration against every structural
// invariant the chain maintains: internal count consistency, connectivity,
// hole-freeness, and the edge/perimeter identity e = 3n − p − 3. It returns
// nil on a healthy System and a *psys.InvariantError naming the violated
// property otherwise. Intended as a cheap integrity check after restores
// and long runs.
func (s *System) CheckInvariants() error { return s.chain.Config().CheckInvariants() }

// SetAutoCheckpoint configures crash-safe checkpointing for RunContext and
// Run: the full chain state is written atomically (temp file + rename) to
// path after every `every` steps, so a process killed mid-run loses at most
// one interval of work and resumes with RestoreFile. every = 0 or an empty
// path disables auto-checkpointing.
func (s *System) SetAutoCheckpoint(path string, every uint64) {
	s.ckptPath, s.ckptEvery = path, every
}

// The checkpoint surface comes in three symmetric pairs:
//
//	Checkpoint        / Restore      — []byte
//	WriteCheckpointTo / RestoreFrom  — io.Writer / io.Reader
//	WriteCheckpoint   / RestoreFile  — filesystem path (atomic write)
//
// The writer pairs emit the snapbin binary wire format inside the seal
// integrity envelope; Checkpoint keeps producing the documented JSON
// interchange document. Every reader sniffs — envelope magic, then frame
// magic — so state written through any writer (either format, any
// release) restores through any reader: a job server can stream a
// checkpoint over HTTP, persist it to disk, and resume from either copy.
// `sops -convert` translates between the two formats losslessly. See
// Example (Checkpoint).

// encodeBinaryCheckpoint encodes the chain state as a sealed snapbin
// frame into the System's reusable scratch: no allocation at steady
// state. The returned slice is valid until the next encode.
func (s *System) encodeBinaryCheckpoint() ([]byte, error) {
	p := s.chain.Params()
	st := s.chain.Stats()
	s.cpView.Lambda, s.cpView.Gamma = p.Lambda, p.Gamma
	s.cpView.DisableSwaps, s.cpView.Seed = p.DisableSwaps, p.Seed
	s.cpView.Steps, s.cpView.Moves = st.Steps, st.Moves
	s.cpView.Swaps, s.cpView.Rejected = st.Swaps, st.Rejected
	s.cpView.Rng = s.chain.AppendRngState(s.cpView.Rng[:0])
	s.cpView.Config = s.chain.Config()
	s.cpView.Order = s.chain.Positions()
	s.cpView.Model, s.cpView.Couplings = "", nil
	if name := s.chain.ModelName(); name != "separation" {
		// The model trailer travels only for non-separation chains, so
		// separation frames stay byte-identical to pre-registry releases.
		s.cpView.Model = name
		s.cpView.Couplings = s.chain.Couplings()
	}
	frame, err := s.enc.EncodeCheckpoint(&s.cpView)
	if err != nil {
		return nil, fmt.Errorf("sops: encode checkpoint: %w", err)
	}
	s.sealed = seal.AppendEncode(s.sealed[:0], frame)
	return s.sealed, nil
}

// restoreBinary rebuilds a System from a bare snapbin checkpoint frame.
func restoreBinary(data []byte, th *Thresholds) (*System, error) {
	bcp, err := snapbin.DecodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("sops: decode checkpoint: %w", err)
	}
	if len(bcp.Rng) != 32 {
		return nil, fmt.Errorf("sops: decode checkpoint: rng state is %d bytes, want 32", len(bcp.Rng))
	}
	order := make([][2]int, len(bcp.Order))
	for i, p := range bcp.Order {
		order[i] = [2]int{p.Q, p.R}
	}
	cp := core.Checkpoint{
		Params: core.Params{
			Lambda:       bcp.Lambda,
			Gamma:        bcp.Gamma,
			DisableSwaps: bcp.DisableSwaps,
			Seed:         bcp.Seed,
		},
		Stats: core.Stats{
			Steps:    bcp.Steps,
			Moves:    bcp.Moves,
			Swaps:    bcp.Swaps,
			Rejected: bcp.Rejected,
		},
		Rng:       hexEncode(bcp.Rng),
		Config:    bcp.Config,
		Order:     order,
		Model:     bcp.Model,
		Couplings: bcp.Couplings,
	}
	chain, err := core.Resume(&cp)
	if err != nil {
		return nil, fmt.Errorf("sops: %w", err)
	}
	thresholds := metrics.DefaultThresholds()
	if th != nil {
		thresholds = *th
	}
	return &System{chain: chain, th: thresholds, meter: metrics.NewMeter(thresholds)}, nil
}

// hexEncode renders b as lowercase hex — the textual rng codec of the
// JSON checkpoint document.
func hexEncode(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 2*len(b))
	for i, v := range b {
		out[2*i], out[2*i+1] = digits[v>>4], digits[v&0xf]
	}
	return string(out)
}

// WriteCheckpoint atomically writes the System's checkpoint (see
// Checkpoint) to path inside an integrity envelope: the sealed state is
// staged in a temporary file in path's directory, synced, and renamed into
// place, so a crash mid-write never leaves a truncated checkpoint behind —
// and a checkpoint that is later corrupted on disk (bit rot, torn by a
// lying fsync) is detected at restore time instead of silently diverging
// the trajectory. The file previously at path is kept as path+".prev",
// the last-good generation RestoreFile falls back to.
func (s *System) WriteCheckpoint(path string) error {
	if !checkpointBinary {
		data, err := s.Checkpoint()
		if err != nil {
			return err
		}
		if err := seal.WriteFile(path, data, 0o644); err != nil {
			return fmt.Errorf("sops: write checkpoint: %w", err)
		}
		return nil
	}
	sealed, err := s.encodeBinaryCheckpoint()
	if err != nil {
		return err
	}
	if err := seal.WriteSealed(path, sealed, 0o644); err != nil {
		return fmt.Errorf("sops: write checkpoint: %w", err)
	}
	return nil
}

// WriteCheckpointTo writes the System's checkpoint to w as one sealed
// binary frame (the same bytes WriteCheckpoint puts on disk). Unlike
// WriteCheckpoint it makes no atomicity promise — that is the stream's
// concern — which is what a network or pipe destination wants. The write
// itself allocates nothing at steady state.
func (s *System) WriteCheckpointTo(w io.Writer) error {
	var data []byte
	var err error
	if checkpointBinary {
		data, err = s.encodeBinaryCheckpoint()
	} else {
		data, err = s.Checkpoint()
	}
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("sops: write checkpoint: %w", err)
	}
	return nil
}

// RestoreFrom rebuilds a System from a checkpoint stream written by
// WriteCheckpointTo (or any of the checkpoint writers). th overrides the
// phase-classification thresholds (nil for defaults).
func RestoreFrom(r io.Reader, th *Thresholds) (*System, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("sops: read checkpoint: %w", err)
	}
	return Restore(data, th)
}

// RestoreFile rebuilds a System from a checkpoint file written by
// WriteCheckpoint or auto-checkpointing, verifying its integrity envelope.
// A file that fails verification is quarantined to <dir>/corrupt/ and the
// ".prev" generation is restored instead; only when no generation verifies
// does RestoreFile fail, with an error matching seal.ErrCorrupt or
// seal.ErrTruncated. th overrides the phase-classification thresholds (nil
// for defaults). The restored System continues the exact trajectory of the
// checkpointed one.
func RestoreFile(path string, th *Thresholds) (*System, error) {
	data, _, err := seal.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sops: read checkpoint: %w", err)
	}
	return Restore(data, th)
}

// Checkpoint serializes the System's complete state (configuration, bias
// parameters, statistics, random-generator state) to JSON. A System
// restored with Restore continues the exact same trajectory.
func (s *System) Checkpoint() ([]byte, error) {
	cp, err := s.chain.Checkpoint()
	if err != nil {
		return nil, fmt.Errorf("sops: %w", err)
	}
	return cp.MarshalJSON()
}

// Restore rebuilds a System from a Checkpoint blob. The format is
// sniffed: blobs carrying the integrity envelope (read whole from a file
// WriteCheckpoint produced) are verified and unwrapped first, then a
// snapbin frame magic selects the binary decoder and anything else is
// decoded as the JSON document — so every checkpoint reader accepts every
// checkpoint writer's output, either format, any release. th overrides
// the phase-classification thresholds (nil for defaults).
func Restore(data []byte, th *Thresholds) (*System, error) {
	if seal.Sealed(data) {
		payload, err := seal.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("sops: checkpoint: %w", err)
		}
		data = payload
	}
	if snapbin.IsFrame(data) {
		return restoreBinary(data, th)
	}
	var cp core.Checkpoint
	if err := cp.UnmarshalJSON(data); err != nil {
		return nil, fmt.Errorf("sops: decode checkpoint: %w", err)
	}
	chain, err := core.Resume(&cp)
	if err != nil {
		return nil, fmt.Errorf("sops: %w", err)
	}
	thresholds := metrics.DefaultThresholds()
	if th != nil {
		thresholds = *th
	}
	return &System{chain: chain, th: thresholds, meter: metrics.NewMeter(thresholds)}, nil
}
