package sops

import (
	"context"
	"strings"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Counts: []int{5, 5}, Lambda: 0, Gamma: 1}); err == nil {
		t.Fatal("invalid lambda accepted")
	}
	if _, err := New(Options{Counts: nil, Lambda: 4, Gamma: 4}); err == nil {
		t.Fatal("empty counts accepted")
	}
	if _, err := New(Options{Counts: []int{-1}, Lambda: 4, Gamma: 4}); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestSystemLifecycle(t *testing.T) {
	sys, err := New(Options{Counts: []int{10, 10}, Lambda: 4, Gamma: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.N() != 20 {
		t.Fatalf("N=%d", sys.N())
	}
	sys.RunSteps(50000)
	if sys.Steps() != 50000 {
		t.Fatalf("steps %d", sys.Steps())
	}
	m := sys.Metrics()
	if m.N != 20 || m.Steps != 50000 {
		t.Fatalf("metrics header %+v", m)
	}
	if m.Edges != m.HomEdges+m.HetEdges {
		t.Fatalf("inconsistent metrics %+v", m)
	}
	st := sys.Stats()
	if st.Moves+st.Swaps+st.Rejected != st.Steps {
		t.Fatalf("stats %+v", st)
	}
	if sys.Params().Lambda != 4 {
		t.Fatal("params lost")
	}
}

func TestSystemSeparatesAndClassifies(t *testing.T) {
	sys, err := New(Options{Counts: []int{25, 25}, Lambda: 4, Gamma: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys.RunSteps(2000000)
	m := sys.Metrics()
	if m.Phase != CompressedSeparated {
		t.Fatalf("phase %v after long γ=4 run (seg=%v, α=%v)", m.Phase, m.Segregation, m.Alpha)
	}
}

func TestSeparatedStart(t *testing.T) {
	sys, err := New(Options{Counts: []int{25, 25}, Separated: true, Lambda: 4, Gamma: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m := sys.Metrics(); m.Phase != CompressedSeparated {
		t.Fatalf("separated start classified %v", m.Phase)
	}
}

func TestRunWithEarlyStop(t *testing.T) {
	sys, err := New(Options{Counts: []int{5, 5}, Lambda: 2, Gamma: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	sys.Run(context.Background(), RunSpec{Steps: 100000, SampleEvery: 1000, Observer: func(Snapshot) bool {
		calls++
		return calls < 5
	}})
	if calls != 5 {
		t.Fatalf("observer calls %d", calls)
	}
	if sys.Steps() != 5000 {
		t.Fatalf("early stop ran %d steps", sys.Steps())
	}
}

func TestRendering(t *testing.T) {
	sys, err := New(Options{Counts: []int{5, 5}, Lambda: 2, Gamma: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sys.ASCII() == "" {
		t.Fatal("empty ASCII render")
	}
	var b strings.Builder
	if err := sys.RenderSVG(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg") {
		t.Fatal("not an SVG")
	}
}

func TestSnapshotIndependent(t *testing.T) {
	sys, err := New(Options{Counts: []int{8, 8}, Lambda: 3, Gamma: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	snap := sys.Snapshot()
	sys.RunSteps(10000)
	if snap.N() != 16 {
		t.Fatal("snapshot mutated by run")
	}
}

func TestHelpersExposed(t *testing.T) {
	sys, err := New(Options{Counts: []int{10, 10}, Separated: true, Lambda: 4, Gamma: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sys.Snapshot()
	if !IsCompressed(cfg, 3) {
		t.Fatal("spiral not compressed")
	}
	if !IsSeparated(cfg, 4, 0.2) {
		t.Fatal("separated start not separated")
	}
	if got := Classify(cfg, DefaultThresholds()); got != CompressedSeparated {
		t.Fatalf("Classify = %v", got)
	}
	if s := Capture(cfg, 7, DefaultThresholds()); s.Steps != 7 {
		t.Fatal("Capture steps")
	}
}

func TestDistributedFacade(t *testing.T) {
	d, err := NewDistributed(Options{Counts: []int{10, 10}, Lambda: 4, Gamma: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 20 {
		t.Fatalf("N=%d", d.N())
	}
	_, moves, swaps, err := d.RunContext(context.Background(), 200000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 || swaps == 0 {
		t.Fatalf("no activity: moves=%d swaps=%d", moves, swaps)
	}
	snap := d.Snapshot()
	if !snap.Connected() || !snap.HoleFree() {
		t.Fatal("distributed run violated invariants")
	}
	if d.ASCII() == "" {
		t.Fatal("empty render")
	}
	var b strings.Builder
	if err := d.RenderSVG(&b); err != nil {
		t.Fatal(err)
	}
	if d.Metrics().N != 20 {
		t.Fatal("metrics wrong")
	}
	// Sequential path.
	if _, _, _, err := d.RunContext(context.Background(), 1000, 1); err != nil {
		t.Fatal(err)
	}
}

func TestNewDistributedValidation(t *testing.T) {
	if _, err := NewDistributed(Options{Counts: []int{3, 3}, Lambda: -1, Gamma: 1}); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := NewDistributed(Options{Counts: nil, Lambda: 1, Gamma: 1}); err == nil {
		t.Fatal("empty counts accepted")
	}
}

func TestDistributedFreeze(t *testing.T) {
	d, err := NewDistributed(Options{Counts: []int{8, 8}, Lambda: 4, Gamma: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	d.SetFrozen(2, true)
	if !d.Frozen(2) || d.Frozen(3) {
		t.Fatal("freeze flags wrong")
	}
	if _, _, _, err := d.RunContext(context.Background(), 100000, 2); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if !snap.Connected() || !snap.HoleFree() {
		t.Fatal("invariants violated with a frozen particle")
	}
	d.SetFrozen(2, false)
	if d.Frozen(2) {
		t.Fatal("unfreeze failed")
	}
}

func TestSystemCheckpointRestore(t *testing.T) {
	sys, err := New(Options{Counts: []int{8, 8}, Lambda: 4, Gamma: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	sys.RunSteps(20000)
	blob, err := sys.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(blob, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunSteps(20000)
	restored.RunSteps(20000)
	if sys.Config().CanonicalKey() != restored.Config().CanonicalKey() {
		t.Fatal("restored System diverged")
	}
	if sys.Stats() != restored.Stats() {
		t.Fatal("restored statistics diverged")
	}
	if _, err := Restore([]byte("junk"), nil); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
}
