package sops

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sops/internal/seal"
)

// setFormats flips both wire-format hooks for the duration of a test leg.
func setFormats(t *testing.T, binary bool) {
	t.Helper()
	prevCk, prevMan := checkpointBinary, manifestBinary
	checkpointBinary, manifestBinary = binary, binary
	t.Cleanup(func() { checkpointBinary, manifestBinary = prevCk, prevMan })
}

// TestCheckpointCrossFormatResume pins format interchange on the checkpoint
// surface: a run checkpointed under either wire format, restored under the
// other era's default, continues the exact trajectory — the final serialized
// state is byte-identical to the uninterrupted run's.
func TestCheckpointCrossFormatResume(t *testing.T) {
	const half, full = 20_000, 50_000
	opts := Options{Counts: []int{8, 8}, Lambda: 4, Gamma: 4, Seed: 11}
	ref, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ref.RunSteps(full)
	want, err := ref.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	for _, leg := range []struct {
		name        string
		writeBinary bool
	}{
		{"binary-written_restored-anywhere", true},
		{"json-written_restored-under-binary-default", false},
	} {
		t.Run(leg.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.ckpt")
			sys, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			sys.RunSteps(half)
			prev := checkpointBinary
			checkpointBinary = leg.writeBinary
			err = sys.WriteCheckpoint(path)
			checkpointBinary = prev
			if err != nil {
				t.Fatal(err)
			}
			// Restore always runs with the current (binary) default and
			// sniffs the stored format.
			resumed, err := RestoreFile(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resumed.RunSteps(full - resumed.Steps())
			got, err := resumed.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("trajectory diverged after cross-format resume:\nwant %s\ngot  %s", want, got)
			}
		})
	}
}

// TestSweepResumeAcrossManifestFormats pins format interchange on the sweep
// surface: a sweep interrupted with its manifest and in-flight cells in one
// wire format resumes under the other format's default and produces results
// byte-identical to the uninterrupted sweep — in both directions.
func TestSweepResumeAcrossManifestFormats(t *testing.T) {
	baseline := resumeSpec(t.TempDir())
	baseline.CheckpointPath = ""
	want, err := Sweep(context.Background(), baseline)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	for _, leg := range []struct {
		name                      string
		writeBinary, resumeBinary bool
	}{
		{"json-then-binary", false, true},
		{"binary-then-json", true, false},
	} {
		t.Run(leg.name, func(t *testing.T) {
			setFormats(t, leg.writeBinary)
			spec := resumeSpec(t.TempDir())
			ctx, cancel := context.WithCancel(context.Background())
			spec.Observe = func(done, total int) {
				if done == 3 {
					cancel()
				}
			}
			if _, err := Sweep(ctx, spec); !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted sweep returned %v", err)
			}
			if _, err := os.Stat(spec.CheckpointPath); err != nil {
				t.Fatalf("no manifest written before interruption: %v", err)
			}

			setFormats(t, leg.resumeBinary)
			spec.Observe = nil
			got, err := ResumeSweep(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotJSON, wantJSON) {
				t.Fatalf("cross-format resume diverged from uninterrupted run:\nwant %s\ngot  %s",
					wantJSON, gotJSON)
			}
		})
	}
}

// TestConvertSweepManifestRoundTrip: transcoding a manifest binary → JSON →
// binary preserves the key and every cell record exactly.
func TestConvertSweepManifestRoundTrip(t *testing.T) {
	setFormats(t, true)
	spec := resumeSpec(t.TempDir())
	if _, err := Sweep(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	sealed, err := os.ReadFile(spec.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := seal.Decode(sealed)
	if err != nil {
		t.Fatal(err)
	}
	asJSON, err := ConvertSweepManifest(payload, false)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ConvertSweepManifest(asJSON, true)
	if err != nil {
		t.Fatal(err)
	}
	// Manifest frames carry no placement window, so the re-encoded frame is
	// byte-identical, not merely record-equal.
	if !bytes.Equal(payload, back) {
		t.Fatalf("manifest binary → JSON → binary is not byte-identical")
	}
	key1, recs1, err := decodeManifestPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	key2, recs2, err := decodeManifestPayload(asJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(key1, key2) {
		t.Fatalf("spec key changed across conversion")
	}
	if len(recs1) != len(recs2) {
		t.Fatalf("cell count changed across conversion: %d vs %d", len(recs1), len(recs2))
	}
	for i := range recs1 {
		if recs1[i] != recs2[i] {
			t.Fatalf("cell %d changed across conversion: %+v vs %+v", i, recs1[i], recs2[i])
		}
	}
}
