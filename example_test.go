package sops_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"

	"sops"
)

// ExampleNew shows the basic workflow: build a bichromatic system, run the
// chain in the separation regime, and inspect the resulting phase.
func ExampleNew() {
	sys, err := sops.New(sops.Options{
		Counts: []int{25, 25},
		Lambda: 4,
		Gamma:  4,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.RunSteps(2_000_000)
	m := sys.Metrics()
	fmt.Println("particles:", m.N)
	fmt.Println("phase:", m.Phase)
	// Output:
	// particles: 50
	// phase: compressed-separated
}

// ExampleOptions_integration demonstrates the paper's negative result: a
// fully separated start is destroyed when γ sits in the integration window
// (79/81, 81/79), even though γ > 1.
func ExampleOptions_integration() {
	sys, err := sops.New(sops.Options{
		Counts:    []int{25, 25},
		Separated: true,
		Lambda:    4,
		Gamma:     81.0 / 79.0,
		Seed:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.RunSteps(2_000_000)
	fmt.Println("phase:", sys.Metrics().Phase)
	// Output:
	// phase: compressed-integrated
}

// ExampleNewDistributed runs the asynchronous amoebot runtime with four
// concurrent activation workers and checks the invariants the model
// guarantees.
func ExampleNewDistributed() {
	d, err := sops.NewDistributed(sops.Options{
		Counts: []int{20, 20},
		Lambda: 4,
		Gamma:  4,
		Seed:   3,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, _, _, err := d.RunContext(context.Background(), 500_000, 4); err != nil {
		log.Fatal(err)
	}
	snap := d.Snapshot()
	fmt.Println("connected:", snap.Connected())
	fmt.Println("hole-free:", snap.HoleFree())
	// Output:
	// connected: true
	// hole-free: true
}

// Example_checkpoint walks the unified checkpoint surface: one codec
// behind three symmetric pairs — Checkpoint/Restore over bytes,
// WriteCheckpointTo/RestoreFrom over streams, WriteCheckpoint/RestoreFile
// over atomically-replaced files. State written through any pair restores
// through any other and continues the exact same trajectory.
func Example_checkpoint() {
	sys, err := sops.New(sops.Options{
		Counts: []int{10, 10},
		Lambda: 4,
		Gamma:  4,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.RunSteps(50_000)

	// Stream pair: checkpoint into any io.Writer, restore from any
	// io.Reader (here a buffer; a job server uses an HTTP body or a file).
	var buf bytes.Buffer
	if err := sys.WriteCheckpointTo(&buf); err != nil {
		log.Fatal(err)
	}
	restored, err := sops.RestoreFrom(&buf, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Both continue the exact same trajectory.
	sys.RunSteps(50_000)
	restored.RunSteps(50_000)
	a, _ := sys.Checkpoint() // byte pair: same document the stream carried
	b, _ := restored.Checkpoint()
	fmt.Println("steps:", restored.Steps())
	fmt.Println("identical state:", bytes.Equal(a, b))
	// Output:
	// steps: 100000
	// identical state: true
}

// ExampleSweep_errors takes apart a sweep failure: the returned error is a
// *sops.SweepError whose cells unwrap all the way to their root causes, so
// both errors.As (for the aggregate and per-cell structure) and errors.Is
// (for sentinel causes like ErrBadLambda) work without importing internal
// packages. Failed cells never abort the sweep — the healthy cells still
// deliver results.
func ExampleSweep_errors() {
	results, err := sops.Sweep(context.Background(), sops.SweepSpec{
		Lambdas: []float64{4, -1}, // -1 is invalid: that cell fails
		Gammas:  []float64{4},
		Counts:  []int{6, 6},
		Steps:   1_000,
		Workers: 2,
	})
	var sweepErr *sops.SweepError
	if errors.As(err, &sweepErr) {
		fmt.Println("failed cells:", len(sweepErr.Cells))
		fmt.Println("first failed index:", sweepErr.Cells[0].Index)
		fmt.Println("caused by bad lambda:", errors.Is(err, sops.ErrBadLambda))
	}
	for _, r := range results {
		if r.Err == nil {
			fmt.Printf("λ=%g finished with %d particles\n", r.Lambda, r.Snap.N)
		}
	}
	// Output:
	// failed cells: 1
	// first failed index: 1
	// caused by bad lambda: true
	// λ=4 finished with 12 particles
}
