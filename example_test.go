package sops_test

import (
	"fmt"
	"log"

	"sops"
)

// ExampleNew shows the basic workflow: build a bichromatic system, run the
// chain in the separation regime, and inspect the resulting phase.
func ExampleNew() {
	sys, err := sops.New(sops.Options{
		Counts: []int{25, 25},
		Lambda: 4,
		Gamma:  4,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Run(2_000_000)
	m := sys.Metrics()
	fmt.Println("particles:", m.N)
	fmt.Println("phase:", m.Phase)
	// Output:
	// particles: 50
	// phase: compressed-separated
}

// ExampleOptions_integration demonstrates the paper's negative result: a
// fully separated start is destroyed when γ sits in the integration window
// (79/81, 81/79), even though γ > 1.
func ExampleOptions_integration() {
	sys, err := sops.New(sops.Options{
		Counts:    []int{25, 25},
		Separated: true,
		Lambda:    4,
		Gamma:     81.0 / 79.0,
		Seed:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Run(2_000_000)
	fmt.Println("phase:", sys.Metrics().Phase)
	// Output:
	// phase: compressed-integrated
}

// ExampleNewDistributed runs the asynchronous amoebot runtime with four
// concurrent activation workers and checks the invariants the model
// guarantees.
func ExampleNewDistributed() {
	d, err := sops.NewDistributed(sops.Options{
		Counts: []int{20, 20},
		Lambda: 4,
		Gamma:  4,
		Seed:   3,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := d.Run(500_000, 4, 7); err != nil {
		log.Fatal(err)
	}
	snap := d.Snapshot()
	fmt.Println("connected:", snap.Connected())
	fmt.Println("hole-free:", snap.HoleFree())
	// Output:
	// connected: true
	// hole-free: true
}
