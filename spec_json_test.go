package sops

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestOptionsJSONRoundTrip(t *testing.T) {
	orig := Options{
		Counts:       []int{30, 20, 10},
		Layout:       LayoutLine,
		Separated:    true,
		Lambda:       4.5,
		Gamma:        2.25,
		DisableSwaps: true,
		Seed:         42,
		Thresholds:   &Thresholds{Alpha: 1.5, MinSegregation: 0.8},
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Layout travels by name, not number.
	if !strings.Contains(string(data), `"layout": "line"`) && !strings.Contains(string(data), `"layout":"line"`) {
		t.Fatalf("layout not encoded by name: %s", data)
	}
	var got Options
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	re, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(re) != string(data) {
		t.Fatalf("round trip changed the document:\n  %s\n  %s", data, re)
	}
	if got.Layout != LayoutLine || got.Lambda != 4.5 || !got.DisableSwaps || got.Thresholds == nil {
		t.Fatalf("round trip lost fields: %+v", got)
	}
}

func TestOptionsJSONDefaultsOmitted(t *testing.T) {
	data, err := json.Marshal(Options{Counts: []int{10}, Lambda: 2, Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"layout", "separated", "disableSwaps", "seed", "thresholds"} {
		if strings.Contains(string(data), absent) {
			t.Errorf("default %s not omitted: %s", absent, data)
		}
	}
}

func TestOptionsJSONStrict(t *testing.T) {
	var o Options
	err := json.Unmarshal([]byte(`{"counts": [4], "lambda": 2, "gamma": 2, "lamda": 3}`), &o)
	if err == nil || !strings.Contains(err.Error(), "lamda") {
		t.Fatalf("typo field not rejected: %v", err)
	}
	if err := json.Unmarshal([]byte(`{"counts": [4], "layout": "ring"}`), &o); err == nil {
		t.Fatal("unknown layout name not rejected")
	}
}

func TestSweepSpecJSONRoundTrip(t *testing.T) {
	orig := SweepSpec{
		Lambdas:   []float64{2, 4, 6},
		Gammas:    []float64{1, 3},
		Seeds:     []uint64{7, 8},
		Counts:    []int{50, 50},
		Layout:    LayoutSpiral,
		Steps:     100_000,
		Workers:   3,
		Retries:   2,
		Backoff:   250 * time.Millisecond,
		Separated: true,
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got SweepSpec
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Backoff != 250*time.Millisecond {
		t.Fatalf("Backoff = %v, want 250ms", got.Backoff)
	}
	if got.Layout != LayoutSpiral || got.Steps != 100_000 || got.Retries != 2 || len(got.Lambdas) != 3 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped spec does not validate: %v", err)
	}
	re, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(re) != string(data) {
		t.Fatalf("round trip changed the document:\n  %s\n  %s", data, re)
	}
}

// TestSweepSpecJSONRuntimeFieldsExcluded pins the contract that callbacks
// and checkpoint wiring are not part of the wire form: they never appear in
// the encoding, and decoding leaves them zero for the executor to supply.
func TestSweepSpecJSONRuntimeFieldsExcluded(t *testing.T) {
	spec := SweepSpec{
		Lambdas:         []float64{2},
		Gammas:          []float64{2},
		Counts:          []int{10},
		Steps:           100,
		Observe:         func(done, total int) {},
		Progress:        func(SweepProgress) {},
		CheckpointPath:  "/tmp/should-not-travel",
		CheckpointEvery: 5,
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("spec with callbacks must still marshal: %v", err)
	}
	if strings.Contains(string(data), "should-not-travel") || strings.Contains(strings.ToLower(string(data)), "checkpoint") {
		t.Fatalf("runtime fields leaked into the wire form: %s", data)
	}
	var got SweepSpec
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Observe != nil || got.Progress != nil || got.CheckpointPath != "" || got.CheckpointEvery != 0 {
		t.Fatalf("runtime fields not zero after decode: %+v", got)
	}
}

func TestSweepSpecJSONStrict(t *testing.T) {
	var spec SweepSpec
	err := json.Unmarshal([]byte(`{"lambdas": [2], "gammas": [2], "counts": [4], "steps": 10, "checkpointPath": "x"}`), &spec)
	if err == nil || !strings.Contains(err.Error(), "checkpointPath") {
		t.Fatalf("runtime field in wire document not rejected: %v", err)
	}
}

func TestLayoutTextCodec(t *testing.T) {
	for _, tc := range []struct {
		l    Layout
		name string
	}{
		{LayoutSpiral, "spiral"},
		{LayoutLine, "line"},
	} {
		b, err := tc.l.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != tc.name {
			t.Fatalf("MarshalText(%v) = %q, want %q", tc.l, b, tc.name)
		}
		var back Layout
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != tc.l {
			t.Fatalf("UnmarshalText(%q) = %v, want %v", b, back, tc.l)
		}
	}
	var l Layout
	if err := l.UnmarshalText([]byte("")); err != nil || l != 0 {
		t.Fatalf("empty layout = %v, %v; want the zero value (spiral default)", l, err)
	}
	if err := l.UnmarshalText([]byte("ring")); err == nil {
		t.Fatal("unknown layout name accepted")
	}
}
