module sops

go 1.22
