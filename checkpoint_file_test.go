package sops

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteCheckpointRestoreFile: a System restored from a checkpoint file
// continues the exact trajectory of the original.
func TestWriteCheckpointRestoreFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sys.ckpt")
	sys, err := New(Options{Counts: []int{8, 8}, Lambda: 3, Gamma: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sys.RunSteps(40_000)
	if err := sys.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatalf("restored system violates invariants: %v", err)
	}
	sys.RunSteps(40_000)
	restored.RunSteps(40_000)
	if sys.Metrics() != restored.Metrics() {
		t.Fatal("restored system diverged from the original")
	}
}

// TestAutoCheckpoint: Run writes checkpoints on its configured
// interval, and a System resumed from the mid-run checkpoint finishes on
// the same trajectory as the uninterrupted run.
func TestAutoCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "auto.ckpt")
	sys, err := New(Options{Counts: []int{8, 8}, Lambda: 3, Gamma: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetAutoCheckpoint(path, 10_000)
	if _, err := sys.Run(context.Background(), RunSpec{Steps: 25_000}); err != nil {
		t.Fatal(err)
	}
	// The final interval flush makes the file current with the live System.
	restored, err := RestoreFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Steps() != 25_000 {
		t.Fatalf("checkpoint holds %d steps, want 25000", restored.Steps())
	}
	restored.RunSteps(25_000)
	sys.SetAutoCheckpoint("", 0)
	sys.RunSteps(25_000)
	if sys.Metrics() != restored.Metrics() {
		t.Fatal("resumed run diverged from the uninterrupted one")
	}
}

// TestRestoreFileErrors: missing and corrupt checkpoint files report
// errors rather than half-built Systems.
func TestRestoreFileErrors(t *testing.T) {
	if _, err := RestoreFile(filepath.Join(t.TempDir(), "missing"), nil); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreFile(bad, nil); err == nil {
		t.Fatal("corrupt file accepted")
	}
}
